"""Cluster-quality metrics (paper Section V-C, Figs. 6–8).

Two metrics compare clusterings:

* the CDF of the **maximum pairwise temperature difference** inside
  each cluster over the evaluation period — small differences mean one
  sensor can stand in for the cluster;
* the **within-cluster correlation** — high correlation means the
  cluster moves together, which HVAC control can exploit.

Plus the per-cluster mean temperature (the right-hand panels of
Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.similarity import correlation_matrix
from repro.cluster.spectral import ClusteringResult
from repro.data.dataset import AuditoriumDataset
from repro.errors import ClusteringError
from repro.sysid.metrics import empirical_cdf

__all__ = [
    "ClusterQuality",
    "cluster_quality",
    "cluster_mean_temperatures",
    "within_cluster_correlation",
    "cluster_mean_trace",
]


@dataclass
class ClusterQuality:
    """Quality summary of one clustering on an evaluation dataset."""

    k: int
    #: cluster -> condensed vector of max pairwise |ΔT| within the cluster.
    max_differences: Dict[int, np.ndarray]
    #: Max pairwise |ΔT| over *all* sensors (the paper's "overall" curve).
    overall_differences: np.ndarray
    #: Full correlation matrix, rows/cols ordered cluster-by-cluster.
    correlation: np.ndarray
    #: Sensor IDs in the correlation matrix's order.
    correlation_order: Tuple[int, ...]
    #: cluster -> mean within-cluster pairwise correlation.
    mean_within_correlation: Dict[int, float]

    def difference_cdf(self, cluster: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
        """CDF of max pairwise differences for one cluster (or overall)."""
        values = (
            self.overall_differences if cluster is None else self.max_differences[cluster]
        )
        return empirical_cdf(values)

    def fraction_below(self, threshold: float, cluster: int) -> float:
        """Fraction of in-cluster pairs whose max difference is below ``threshold``."""
        values = self.max_differences[cluster]
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return float("nan")
        return float(np.mean(finite < threshold))


def _pairwise_max_abs_diff(columns: np.ndarray) -> np.ndarray:
    n = columns.shape[1]
    out: List[float] = []
    for i in range(n):
        for j in range(i + 1, n):
            diff = np.abs(columns[:, i] - columns[:, j])
            finite = diff[np.isfinite(diff)]
            out.append(float(finite.max()) if finite.size else np.nan)
    return np.asarray(out) if out else np.asarray([0.0])


def cluster_quality(
    clustering: ClusteringResult,
    dataset: AuditoriumDataset,
) -> ClusterQuality:
    """Evaluate ``clustering`` against (typically held-out) ``dataset``.

    Correlations are computed after removing the network common mode
    (the shared diurnal cycle), matching the contrast of the paper's
    correlation maps; the max-difference CDFs use the raw traces.
    """
    columns = {sid: dataset.temperature_of(sid) for sid in clustering.sensor_ids}
    all_matrix = np.column_stack([columns[sid] for sid in clustering.sensor_ids])
    from repro.cluster.similarity import remove_network_mean

    residual = remove_network_mean(all_matrix)
    residual_of = {
        sid: residual[:, i] for i, sid in enumerate(clustering.sensor_ids)
    }

    max_differences: Dict[int, np.ndarray] = {}
    mean_corr: Dict[int, float] = {}
    order: List[int] = []
    for cluster in range(clustering.k):
        members = clustering.members(cluster)
        order.extend(members)
        if len(members) < 2:
            max_differences[cluster] = np.asarray([0.0])
            mean_corr[cluster] = 1.0
            continue
        member_matrix = np.column_stack([columns[sid] for sid in members])
        max_differences[cluster] = _pairwise_max_abs_diff(member_matrix)
        member_residuals = np.column_stack([residual_of[sid] for sid in members])
        corr = correlation_matrix(member_residuals, min_common_samples=5)
        upper = corr[np.triu_indices_from(corr, k=1)]
        finite = upper[np.isfinite(upper)]
        mean_corr[cluster] = float(finite.mean()) if finite.size else float("nan")

    overall = _pairwise_max_abs_diff(all_matrix)

    ordered_residuals = np.column_stack([residual_of[sid] for sid in order])
    correlation = correlation_matrix(ordered_residuals, min_common_samples=5)

    return ClusterQuality(
        k=clustering.k,
        max_differences=max_differences,
        overall_differences=overall,
        correlation=correlation,
        correlation_order=tuple(order),
        mean_within_correlation=mean_corr,
    )


def cluster_mean_temperatures(
    clustering: ClusteringResult, dataset: AuditoriumDataset
) -> Dict[int, float]:
    """Time-mean temperature of each cluster (Fig. 6 right panels)."""
    out: Dict[int, float] = {}
    for cluster in range(clustering.k):
        members = clustering.members(cluster)
        matrix = np.column_stack([dataset.temperature_of(sid) for sid in members])
        finite = matrix[np.isfinite(matrix)]
        if finite.size == 0:
            raise ClusteringError(f"cluster {cluster} has no finite samples")
        out[cluster] = float(finite.mean())
    return out


def within_cluster_correlation(
    clustering: ClusteringResult, dataset: AuditoriumDataset
) -> Dict[int, float]:
    """Mean pairwise correlation inside each cluster on ``dataset``."""
    return cluster_quality(clustering, dataset).mean_within_correlation


def cluster_mean_trace(
    dataset: AuditoriumDataset, members: Sequence[int]
) -> np.ndarray:
    """Per-tick mean temperature over ``members`` (NaN-aware)."""
    if not members:
        raise ClusteringError("empty member list")
    matrix = np.column_stack([dataset.temperature_of(sid) for sid in members])
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        return np.nanmean(matrix, axis=1)
