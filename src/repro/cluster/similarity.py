"""Similarity graphs between sensors (paper Section V-A).

Two weightings are studied, mirroring the paper:

* **Euclidean**: the RMS distance between two sensors' temperature
  traces, turned into a similarity with a Gaussian kernel whose width
  follows the median-distance heuristic.  This groups sensors by
  *temperature level* (front cool vs back warm).
* **Correlation**: the Pearson correlation between traces.  This groups
  sensors by *co-movement* — how similarly they respond to HVAC and
  occupancy — which is why the paper finds it gives more consistent
  clusters.

Both handle missing samples by restricting each pair to its common
finite rows, and both can threshold weak edges (the ε-graph of the
spectral-clustering literature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.contracts import check_shapes, ensure_unit_range
from repro.errors import ClusteringError

__all__ = [
    "SimilarityOptions",
    "pairwise_euclidean",
    "remove_network_mean",
    "correlation_matrix",
    "euclidean_similarity",
    "correlation_similarity",
]


@dataclass(frozen=True)
class SimilarityOptions:
    """Graph-construction knobs."""

    #: Gaussian kernel width for Euclidean similarity; ``None`` uses the
    #: median pairwise distance (the standard heuristic).
    sigma: Optional[float] = None
    #: Zero out similarities below this value (ε-graph sparsification).
    edge_threshold: float = 0.0
    #: Minimum number of common finite samples for a pair to get an edge.
    min_common_samples: int = 10
    #: For correlation similarity: correlate first differences instead
    #: of raw traces, emphasizing response dynamics over level.
    use_differences: bool = False
    #: For correlation similarity: subtract the per-tick network mean
    #: before correlating.  All sensors share the room's diurnal cycle
    #: (raw pairwise correlations are ~0.97+); removing the common mode
    #: exposes the spatial structure — within-zone correlations stay
    #: high while cross-zone ones go negative, matching the paper's
    #: correlation maps (Figs. 7–8).
    remove_common_mode: bool = True

    def __post_init__(self) -> None:
        if self.sigma is not None and self.sigma <= 0:
            raise ClusteringError("sigma must be positive")
        if not 0.0 <= self.edge_threshold < 1.0:
            raise ClusteringError("edge_threshold must be in [0, 1)")
        if self.min_common_samples < 2:
            raise ClusteringError("min_common_samples must be at least 2")


def _check_traces(traces: np.ndarray) -> np.ndarray:
    traces = np.asarray(traces, dtype=float)
    if traces.ndim != 2:
        raise ClusteringError("traces must be a (n_samples, n_sensors) matrix")
    if traces.shape[1] < 2:
        raise ClusteringError("need at least two sensors to cluster")
    return traces


def pairwise_euclidean(traces: np.ndarray, min_common_samples: int = 10) -> np.ndarray:
    """RMS distance between each pair of columns over common finite rows.

    Using the *root-mean-square* rather than the raw Euclidean norm
    makes pairs with different amounts of common data comparable.
    Pairs with too few common samples get distance NaN.
    """
    traces = _check_traces(traces)
    n = traces.shape[1]
    out = np.zeros((n, n))
    finite = np.isfinite(traces)
    for i in range(n):
        for j in range(i + 1, n):
            common = finite[:, i] & finite[:, j]
            count = int(common.sum())
            if count < min_common_samples:
                out[i, j] = out[j, i] = np.nan
                continue
            diff = traces[common, i] - traces[common, j]
            out[i, j] = out[j, i] = float(np.sqrt(np.mean(diff**2)))
    return out


def remove_network_mean(traces: np.ndarray) -> np.ndarray:
    """Subtract the per-tick mean across sensors (NaN-aware)."""
    traces = _check_traces(traces)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", category=RuntimeWarning)
        common = np.nanmean(traces, axis=1)
    return traces - common[:, None]


def correlation_matrix(
    traces: np.ndarray,
    min_common_samples: int = 10,
    use_differences: bool = False,
    remove_common_mode: bool = False,
) -> np.ndarray:
    """Pearson correlation between each pair of columns (common rows).

    With ``use_differences`` the correlation is computed on first
    differences; with ``remove_common_mode`` the per-tick network mean
    is subtracted first.  Both remove the shared diurnal component that
    otherwise pins every pairwise correlation near 1.
    """
    traces = _check_traces(traces)
    if remove_common_mode:
        traces = remove_network_mean(traces)
    if use_differences:
        traces = np.diff(traces, axis=0)
    n = traces.shape[1]
    out = np.eye(n)
    finite = np.isfinite(traces)
    for i in range(n):
        for j in range(i + 1, n):
            common = finite[:, i] & finite[:, j]
            count = int(common.sum())
            if count < min_common_samples:
                out[i, j] = out[j, i] = np.nan
                continue
            a = traces[common, i]
            b = traces[common, j]
            sa, sb = a.std(), b.std()
            if sa <= 1e-12 or sb <= 1e-12:
                out[i, j] = out[j, i] = 0.0
                continue
            out[i, j] = out[j, i] = float(np.corrcoef(a, b)[0, 1])
    return out


def _apply_threshold(weights: np.ndarray, threshold: float) -> np.ndarray:
    if threshold > 0.0:
        weights = np.where(weights >= threshold, weights, 0.0)
    return weights


@check_shapes(traces="n p", ret="p p")
def euclidean_similarity(
    traces: np.ndarray, options: Optional[SimilarityOptions] = None
) -> np.ndarray:
    """Gaussian-kernel similarity from pairwise RMS distances.

    ``s_ij = exp(-d_ij² / (2 σ²))`` with σ from the median-distance
    heuristic unless given.  NaN distances (insufficient overlap)
    become zero-weight edges; the diagonal is zero (no self-loops).
    """
    options = options or SimilarityOptions()
    distances = pairwise_euclidean(traces, min_common_samples=options.min_common_samples)
    upper = distances[np.triu_indices_from(distances, k=1)]
    finite = upper[np.isfinite(upper)]
    if finite.size == 0:
        raise ClusteringError("no sensor pair has enough common samples")
    sigma = options.sigma if options.sigma is not None else float(np.median(finite))
    if sigma <= 0:
        sigma = float(np.mean(finite)) or 1.0
    with np.errstate(invalid="ignore"):
        weights = np.exp(-np.square(distances) / (2.0 * sigma**2))
    weights = np.where(np.isfinite(weights), weights, 0.0)
    np.fill_diagonal(weights, 0.0)
    return _apply_threshold(weights, options.edge_threshold)


@check_shapes(traces="n p", ret="p p")
def correlation_similarity(
    traces: np.ndarray, options: Optional[SimilarityOptions] = None
) -> np.ndarray:
    """Similarity from Pearson correlations: ``s_ij = max(r_ij, 0)``.

    Negative correlations mean the locations move oppositely — no
    affinity — so they are clipped to zero rather than folded in.
    """
    options = options or SimilarityOptions()
    corr = correlation_matrix(
        traces,
        min_common_samples=options.min_common_samples,
        use_differences=options.use_differences,
        remove_common_mode=options.remove_common_mode,
    )
    weights = np.where(np.isfinite(corr), np.clip(corr, 0.0, 1.0), 0.0)
    np.fill_diagonal(weights, 0.0)
    ensure_unit_range(weights, 0.0, 1.0, "correlation similarity weights")
    return _apply_threshold(weights, options.edge_threshold)
