"""Graph Laplacians and their eigensystems (von Luxburg [23]).

The unnormalized Laplacian ``L = D − W`` is what the paper's eigengap
analysis uses; the symmetric normalized variant
``L_sym = I − D^{-1/2} W D^{-1/2}`` is also provided because it is the
standard choice for the spectral embedding itself.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.contracts import check_shapes
from repro.errors import ClusteringError

__all__ = [
    "graph_laplacian",
    "laplacian_eigensystem",
    "n_connected_components",
]


def _check_weights(weights: np.ndarray) -> np.ndarray:
    w = np.asarray(weights, dtype=float)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ClusteringError("weight matrix must be square")
    if not np.all(np.isfinite(w)):
        raise ClusteringError("weight matrix contains non-finite entries")
    if np.any(w < 0):
        raise ClusteringError("similarities must be non-negative")
    if not np.allclose(w, w.T, atol=1e-10):
        raise ClusteringError("weight matrix must be symmetric")
    return w


@check_shapes(weights="n n", ret="n n")
def graph_laplacian(weights: np.ndarray, normalized: bool = False) -> np.ndarray:
    """``L = D − W`` or the symmetric normalized Laplacian.

    Isolated vertices (zero degree) are legal: their normalized row is
    taken as the identity row, matching the convention that an isolated
    vertex is its own connected component.
    """
    w = _check_weights(weights)
    degree = w.sum(axis=1)
    if not normalized:
        return np.diag(degree) - w
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degree > 0, 1.0 / np.sqrt(np.maximum(degree, 1e-300)), 0.0)
    lap = np.eye(w.shape[0]) - (inv_sqrt[:, None] * w) * inv_sqrt[None, :]
    return lap


def laplacian_eigensystem(
    weights: np.ndarray, normalized: bool = False
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted eigenvalues and eigenvectors of the Laplacian.

    Returns ``(eigenvalues, eigenvectors)`` with eigenvalues ascending
    and ``eigenvectors[:, i]`` the i-th eigenvector.  The Laplacian is
    symmetric, so :func:`numpy.linalg.eigh` applies; tiny negative
    eigenvalues from round-off are clipped to zero.
    """
    lap = graph_laplacian(weights, normalized=normalized)
    eigenvalues, eigenvectors = np.linalg.eigh(lap)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return eigenvalues, eigenvectors


def n_connected_components(weights: np.ndarray, tol: float = 1e-9) -> int:
    """Number of connected components = multiplicity of eigenvalue 0."""
    eigenvalues, _ = laplacian_eigensystem(weights)
    return int(np.sum(eigenvalues <= tol))
