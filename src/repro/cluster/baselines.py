"""Baseline clustering algorithms the paper compares against.

The paper motivates spectral clustering over "traditional clustering
algorithms such as k-means or single linkage"; both are implemented
here (from scratch) so that comparison can be reproduced.
"""

from __future__ import annotations

import numpy as np

from repro import rng as rng_mod
from repro.cluster.kmeans import kmeans
from repro.cluster.similarity import pairwise_euclidean
from repro.errors import ClusteringError

__all__ = [
    "kmeans_traces",
    "single_linkage",
]


def _impute_traces(traces: np.ndarray) -> np.ndarray:
    """Column-mean imputation so vector-space methods can run on gappy data."""
    traces = np.array(traces, dtype=float, copy=True)
    for j in range(traces.shape[1]):
        column = traces[:, j]
        finite = np.isfinite(column)
        if not finite.any():
            raise ClusteringError(f"column {j} has no finite samples")
        column[~finite] = column[finite].mean()
    return traces


def kmeans_traces(
    traces: np.ndarray, k: int, seed: rng_mod.SeedLike = None
) -> np.ndarray:
    """Plain k-means on the (transposed, mean-imputed) trace vectors."""
    points = _impute_traces(traces).T
    return kmeans(points, k, seed=seed).labels


def single_linkage(traces: np.ndarray, k: int, min_common_samples: int = 10) -> np.ndarray:
    """Agglomerative single-linkage clustering on pairwise RMS distances.

    Merges the two closest clusters (minimum over cross-pair distances)
    until ``k`` remain.  Pairs with insufficient common data are treated
    as infinitely far apart.
    """
    distances = pairwise_euclidean(traces, min_common_samples=min_common_samples)
    n = distances.shape[0]
    if not 1 <= k <= n:
        raise ClusteringError(f"k={k} out of range for {n} sensors")
    d = np.where(np.isfinite(distances), distances, np.inf)
    np.fill_diagonal(d, np.inf)

    cluster_of = np.arange(n)
    active = set(range(n))
    # d is maintained as the single-linkage distance between cluster
    # representatives; merging takes the elementwise minimum.
    while len(active) > k:
        best = (np.inf, -1, -1)
        # Sorted scan: on distance ties the lowest (i, j) pair must win
        # regardless of set hash order, or labels differ across runs.
        for i in sorted(active):
            for j in sorted(active):
                if j <= i:
                    continue
                if d[i, j] < best[0]:
                    best = (d[i, j], i, j)
        _, i, j = best
        if i < 0:
            raise ClusteringError(
                "graph is disconnected at this k; lower k or relax min_common_samples"
            )
        cluster_of[cluster_of == j] = i
        d[i, :] = np.minimum(d[i, :], d[j, :])
        d[:, i] = d[i, :]
        d[i, i] = np.inf
        d[j, :] = np.inf
        d[:, j] = np.inf
        active.remove(j)
    # Relabel to 0..k-1 in order of first appearance.
    labels = np.empty(n, dtype=int)
    mapping: dict = {}
    for index, root in enumerate(cluster_of):
        labels[index] = mapping.setdefault(int(root), len(mapping))
    return labels
