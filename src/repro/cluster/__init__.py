"""Sensor clustering (Section V of the paper).

Sensors are clustered from their temperature traces via spectral
clustering on a similarity graph built with either the Euclidean
distance or the correlation between traces; the number of clusters is
chosen by the largest gap between consecutive log-eigenvalues of the
graph Laplacian.  Everything — the graph construction, the Laplacian,
the eigengap rule, the k-means used on the spectral embedding, and the
baseline clusterers — is implemented here from scratch.
"""

from repro.cluster.similarity import (
    SimilarityOptions,
    correlation_matrix,
    correlation_similarity,
    euclidean_similarity,
    pairwise_euclidean,
)
from repro.cluster.laplacian import graph_laplacian, laplacian_eigensystem
from repro.cluster.eigengap import choose_k_by_eigengap, log_eigenvalues
from repro.cluster.kmeans import KMeansResult, kmeans
from repro.cluster.spectral import (
    ClusteringResult,
    spectral_clustering,
    cluster_sensors,
    cluster_sensors_cached,
)
from repro.cluster.baselines import kmeans_traces, single_linkage
from repro.cluster.stability import (
    StabilityResult,
    adjusted_rand_index,
    bootstrap_stability,
)
from repro.cluster.quality import (
    ClusterQuality,
    cluster_mean_temperatures,
    cluster_quality,
    within_cluster_correlation,
)

__all__ = [
    "SimilarityOptions",
    "pairwise_euclidean",
    "correlation_matrix",
    "euclidean_similarity",
    "correlation_similarity",
    "graph_laplacian",
    "laplacian_eigensystem",
    "log_eigenvalues",
    "choose_k_by_eigengap",
    "kmeans",
    "KMeansResult",
    "spectral_clustering",
    "cluster_sensors",
    "cluster_sensors_cached",
    "ClusteringResult",
    "kmeans_traces",
    "single_linkage",
    "ClusterQuality",
    "cluster_quality",
    "cluster_mean_temperatures",
    "within_cluster_correlation",
    "adjusted_rand_index",
    "bootstrap_stability",
    "StabilityResult",
]
