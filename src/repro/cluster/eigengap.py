"""Cluster-count selection by the largest log-eigengap.

The paper (following [24], [25]) plots the Laplacian eigenvalues on a
log scale and picks the cluster count at the largest gap between
consecutive log-eigenvalues: a graph with ``k`` well-separated clusters
has ``k`` near-zero eigenvalues followed by a jump.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ClusteringError

__all__ = [
    "log_eigenvalues",
    "choose_k_by_eigengap",
]

#: Eigenvalues below this are treated as numerically zero before logs.
EIGENVALUE_FLOOR = 1e-9


def log_eigenvalues(eigenvalues: np.ndarray, floor: float = EIGENVALUE_FLOOR) -> np.ndarray:
    """Natural log of eigenvalues, floored to keep zeros finite.

    The flooring matches the paper's plots, which show the near-zero
    eigenvalues pinned at a large negative log value.
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if np.any(eigenvalues < -1e-8):
        raise ClusteringError("Laplacian eigenvalues cannot be negative")
    return np.log(np.maximum(eigenvalues, floor))


def choose_k_by_eigengap(
    eigenvalues: np.ndarray,
    k_min: int = 2,
    k_max: Optional[int] = None,
) -> Tuple[int, np.ndarray]:
    """Pick the cluster count at the largest log-eigengap.

    Parameters
    ----------
    eigenvalues:
        Ascending Laplacian eigenvalues.
    k_min, k_max:
        Candidate range: the gap between ``log λ_{k+1}`` and
        ``log λ_k`` is examined for ``k in [k_min, k_max]``.  ``k_max``
        defaults to half the vertex count (a sensible cap — more
        clusters than that stops being a simplification).

    Returns
    -------
    ``(k, gaps)`` where ``gaps[i]`` is the log-gap after eigenvalue
    ``i+1`` (i.e. ``gaps[k-1]`` is the gap that selects ``k``).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    n = eigenvalues.size
    if n < 3:
        raise ClusteringError("need at least three eigenvalues to choose k")
    if k_max is None:
        k_max = max(k_min, n // 2)
    k_max = min(k_max, n - 1)
    if k_min < 1 or k_min > k_max:
        raise ClusteringError(f"invalid candidate range [{k_min}, {k_max}]")
    logs = log_eigenvalues(eigenvalues)
    gaps = np.diff(logs)  # gaps[i] = log λ_{i+2} − log λ_{i+1} in 1-based terms
    candidate_gaps = gaps[k_min - 1 : k_max]
    k = int(np.argmax(candidate_gaps)) + k_min
    return k, gaps
