"""Deterministic random-number management.

Every stochastic component in the library (weather, occupancy, sensor
noise, packet loss, random selection strategies, ...) draws from a
:class:`numpy.random.Generator` obtained through :func:`derive`, which
deterministically derives independent child streams from a single root
seed and a string label.  Re-running any experiment with the same seed
therefore reproduces the exact same dataset and results, while distinct
components never share a stream.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

__all__ = [
    "as_generator",
    "derive",
    "spawn_seeds",
]

SeedLike = Union[int, np.random.Generator, None]

#: Default root seed used across the library when the caller passes ``None``.
DEFAULT_SEED = 20140630


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` maps to :data:`DEFAULT_SEED` so that library defaults are
    reproducible rather than nondeterministic.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be an int, Generator or None, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def derive(seed: SeedLike, label: str, index: Optional[int] = None) -> np.random.Generator:
    """Derive an independent child generator from ``seed`` and ``label``.

    The derivation hashes the label (and optional integer ``index``, useful
    for per-sensor or per-day streams) into a 128-bit value mixed with the
    root seed, so child streams are stable across processes and platforms.

    Parameters
    ----------
    seed:
        Root seed (int), an existing generator (its next 64-bit draw is
        used as the root), or ``None`` for :data:`DEFAULT_SEED`.
    label:
        Component name, e.g. ``"weather"`` or ``"sensor-noise"``.
    index:
        Optional per-instance discriminator.
    """
    if isinstance(seed, np.random.Generator):
        root = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        root = DEFAULT_SEED
    else:
        root = int(seed)
    material = f"{root}:{label}:{index if index is not None else ''}".encode()
    digest = hashlib.sha256(material).digest()
    child_seed = int.from_bytes(digest[:16], "little")
    return np.random.default_rng(child_seed)


def spawn_seeds(seed: SeedLike, label: str, count: int) -> list:
    """Return ``count`` integer seeds derived from ``seed``/``label``.

    Useful when a component needs to hand stable seeds to sub-components
    it constructs lazily.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    gen = derive(seed, label)
    return [int(s) for s in gen.integers(0, 2**63 - 1, size=count)]
