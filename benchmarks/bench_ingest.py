"""Partitioned ingestion benchmark → ``streaming`` section of
``BENCH_report.json``.

Runs one :class:`~repro.streaming.partition.IngestPlan` fleet three
ways and reports sustained ticks/s for each:

* ``single_pipeline`` — one building through one
  :class:`~repro.streaming.pipeline.OnlinePipeline`, no bus and no
  shards (the per-partition baseline every scaling number is against),
* ``serial``          — the whole fleet through
  :func:`~repro.streaming.shards.run_serial` (the parity reference),
* ``sharded``         — :func:`~repro.streaming.shards.run_ingest`
  at each shard count in the sweep.

Every sharded run is *gated* before any number is reported, exactly
like the simulator benchmark gates on trace bit-identity: each
building's record log must be byte-identical to the serial reference
(:func:`~repro.streaming.shards.verify_parity`).  On a multi-core host
the report additionally gates on ticks/s increasing monotonically with
the shard count; on a single-core host (where shard processes time-slice
one CPU and scaling is physically impossible) that gate is recorded as
``null`` with an explanatory note, following the cache benchmark's
convention for environment-dependent gates.

Environment knobs:

* ``REPRO_BENCH_INGEST_DAYS``      — simulated days per building (default 2),
* ``REPRO_BENCH_INGEST_BUILDINGS`` — fleet size (default 6),
* ``REPRO_BENCH_INGEST_SHARDS``    — comma-separated shard sweep (default 1,2,4).

Run via ``make bench-json`` (or directly:
``PYTHONPATH=src python benchmarks/bench_ingest.py``).  The section is
merged into an existing ``BENCH_report.json``.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.core.artifacts import default_cache  # noqa: E402
from repro.streaming import (  # noqa: E402
    IngestPlan,
    run_ingest,
    run_partition_serial,
    run_serial,
    verify_parity,
)

INGEST_DAYS = float(os.environ.get("REPRO_BENCH_INGEST_DAYS", "2"))
N_BUILDINGS = int(os.environ.get("REPRO_BENCH_INGEST_BUILDINGS", "6"))
SHARD_SWEEP = tuple(
    int(n) for n in os.environ.get("REPRO_BENCH_INGEST_SHARDS", "1,2,4").split(",")
)


def _plan(n_shards: int) -> IngestPlan:
    return IngestPlan(
        n_buildings=N_BUILDINGS, days=INGEST_DAYS, n_shards=n_shards
    )


def _single_pipeline_baseline(out_dir: Path) -> dict:
    """One building, one pipeline, no bus: the per-partition floor."""
    spec = _plan(1).partitions()[0]
    started = time.perf_counter()
    pipeline = run_partition_serial(spec, out_dir / spec.records_name)
    elapsed = time.perf_counter() - started
    ticks = pipeline.summary.n_ticks
    return {
        "building": spec.topic,
        "ticks": ticks,
        "elapsed_s": elapsed,
        "ticks_per_s": ticks / elapsed if elapsed > 0 else float("inf"),
    }


def main() -> int:
    if not default_cache().enabled:
        print(
            "ERROR: REPRO_CACHE=off; the ingest benchmark needs the artifact "
            "cache for partition snapshots",
            file=sys.stderr,
        )
        return 1

    work = Path(tempfile.mkdtemp(prefix="bench-ingest-"))
    print(
        f"ingest benchmark: {N_BUILDINGS} buildings x {INGEST_DAYS:g} days, "
        f"shard sweep {list(SHARD_SWEEP)}"
    )

    print("single-pipeline baseline (one building, no bus, no shards) ...")
    single = _single_pipeline_baseline(work / "single")
    print(
        f"  {single['building']}: {single['ticks']} ticks in "
        f"{single['elapsed_s']:.2f} s ({single['ticks_per_s']:.0f} ticks/s)"
    )

    print(f"serial reference ({N_BUILDINGS} buildings) ...")
    serial_dir = work / "serial"
    started = time.perf_counter()
    counts = run_serial(_plan(1), serial_dir)
    serial_elapsed = time.perf_counter() - started
    serial_ticks = sum(counts.values())
    serial = {
        "ticks": serial_ticks,
        "elapsed_s": serial_elapsed,
        "ticks_per_s": serial_ticks / serial_elapsed,
    }
    print(
        f"  {serial_ticks} ticks in {serial_elapsed:.2f} s "
        f"({serial['ticks_per_s']:.0f} ticks/s)"
    )

    sharded = []
    for n_shards in SHARD_SWEEP:
        plan = _plan(n_shards)
        out = work / f"sharded-{n_shards}"
        print(f"sharded run: {n_shards} shard(s) ...")
        report = run_ingest(plan, out)
        if not report.completed:
            print(
                f"ERROR: the {n_shards}-shard run did not complete",
                file=sys.stderr,
            )
            return 1
        mismatched = verify_parity(out, serial_dir, report.topics)
        if mismatched:
            print(
                "ERROR: sharded record logs diverge from the serial reference "
                f"for {', '.join(mismatched)}; refusing to report timings",
                file=sys.stderr,
            )
            return 1
        print(
            f"  {report.ticks} ticks in {report.elapsed_s:.2f} s "
            f"({report.ticks_per_s:.0f} ticks/s), parity OK"
        )
        sharded.append(
            {
                "n_shards": n_shards,
                "ticks": report.ticks,
                "elapsed_s": report.elapsed_s,
                "ticks_per_s": report.ticks_per_s,
                "restarts": report.restarts,
                "byte_identical": True,
            }
        )

    cpu_count = os.cpu_count() or 1
    rates = [run["ticks_per_s"] for run in sharded]
    if cpu_count >= 2:
        monotonic = all(b > a for a, b in zip(rates, rates[1:]))
        scaling_note = None
        if not monotonic and len(rates) > 1:
            print(
                "ERROR: ticks/s does not increase monotonically with shard "
                f"count on this {cpu_count}-core host: "
                f"{[f'{r:.0f}' for r in rates]}",
                file=sys.stderr,
            )
            return 1
    else:
        monotonic = None
        scaling_note = (
            f"single-core host (cpu_count={cpu_count}): shard processes "
            "time-slice one CPU, so the monotonic-scaling gate is not "
            "meaningful and was skipped; parity was still enforced"
        )
        print(f"note: {scaling_note}")

    section = {
        "buildings": N_BUILDINGS,
        "days": INGEST_DAYS,
        "shard_sweep": list(SHARD_SWEEP),
        "cpu_count": cpu_count,
        "single_pipeline": single,
        "serial": serial,
        "sharded": sharded,
        "byte_identical": True,
        "monotonic_scaling": monotonic,
        "scaling_note": scaling_note,
    }

    target = ROOT / "BENCH_report.json"
    try:
        payload = json.loads(target.read_text())
        if not isinstance(payload, dict):
            payload = {}
    except (OSError, ValueError):
        payload = {}
    payload["streaming"] = section
    target.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote the streaming section of {target}")
    print(
        json.dumps(
            {
                "single_pipeline_ticks_per_s": single["ticks_per_s"],
                "serial_ticks_per_s": serial["ticks_per_s"],
                "sharded_ticks_per_s": {
                    str(run["n_shards"]): run["ticks_per_s"] for run in sharded
                },
            },
            indent=2,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
