"""Cost-aware scheduling benchmark → ``scheduling`` section of
``BENCH_report.json``.

Measures whether the persisted task cost model actually buys makespan
on a cold parallel ``repro report``:

* ``cold_registry`` — empty cache A, ``--jobs N --schedule registry``
  (registry-order dispatch, the pre-cost-model behaviour).  This run
  also *populates* the cost model for protocol length ``--days``.
* ``cold_cost``     — empty cache B that has been seeded with **only**
  the cost artifact from A, ``--jobs N --schedule cost`` (longest-
  processing-time-first dispatch inside each dependency wave).

Both reports must be *byte-identical* — scheduling may only reorder
work, never change it — and the benchmark exits non-zero otherwise.

The section also records ``cost_spread``, the max/min ratio of learned
per-task costs: LPT can only help when task durations are uneven, so a
spread near 1.0 explains away a null speedup.  On a single-CPU host the
speedup is reported as ``null`` with a note, exactly like
``bench_cache.py``.

Environment knobs:

* ``REPRO_BENCH_DAYS`` — trace length (default 98; CI smoke uses 7),
* ``REPRO_BENCH_JOBS`` — worker processes (default 4).

Run via ``make bench-json`` (or directly:
``PYTHONPATH=src python benchmarks/bench_schedule.py``).  The section
is merged into an existing ``BENCH_report.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.core.artifacts import ArtifactCache  # noqa: E402
from repro.experiments.costs import CostModel, costs_key  # noqa: E402

BENCH_DAYS = os.environ.get("REPRO_BENCH_DAYS", "98")
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def _run_report(cache_dir: Path, output: Path, schedule: str) -> float:
    """Time one cold ``repro report`` in a fresh subprocess; returns seconds."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "report",
        "--days",
        BENCH_DAYS,
        "--jobs",
        str(BENCH_JOBS),
        "--schedule",
        schedule,
        "--output",
        str(output),
    ]
    begin = time.perf_counter()
    subprocess.run(command, check=True, env=env, stdout=subprocess.DEVNULL)
    return time.perf_counter() - begin


def _copy_cost_artifact(source_root: Path, target_root: Path) -> CostModel:
    """Seed ``target_root`` with only the cost table learned under
    ``source_root``; returns the model for spread reporting."""
    key = costs_key(float(BENCH_DAYS))
    source = ArtifactCache(root=source_root, enabled=True)
    payload = source.load(key)
    if payload is None:
        raise SystemExit(
            "cold registry run did not persist a cost model; "
            "is REPRO_COSTS=off set in the environment?"
        )
    ArtifactCache(root=target_root, enabled=True).store(key, payload)
    return CostModel(
        days=float(BENCH_DAYS),
        ewma_s=dict(payload.get("ewma_s", {})),
        samples=dict(payload.get("samples", {})),
    )


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-schedule-"))
    try:
        cache_registry = workdir / "cache-registry"
        cache_cost = workdir / "cache-cost"
        report_registry = workdir / "report-registry.txt"
        report_cost = workdir / "report-cost.txt"

        print(
            f"benchmarking repro report --days {BENCH_DAYS} --jobs {BENCH_JOBS} "
            "(registry vs cost schedule) ..."
        )
        timings = {}
        timings["cold_registry"] = _run_report(
            cache_registry, report_registry, schedule="registry"
        )
        print(f"  cold, registry: {timings['cold_registry']:8.2f} s")

        model = _copy_cost_artifact(cache_registry, cache_cost)
        known = list(model.ewma_s.values())
        positive = [cost for cost in known if cost > 0.0]
        cost_spread = (
            round(max(positive) / min(positive), 2) if positive else None
        )

        timings["cold_cost"] = _run_report(cache_cost, report_cost, schedule="cost")
        print(f"  cold, cost    : {timings['cold_cost']:8.2f} s")

        byte_identical = report_registry.read_bytes() == report_cost.read_bytes()
        if not byte_identical:
            print(
                "ERROR: reports differ between registry and cost schedules",
                file=sys.stderr,
            )

        cpus = os.cpu_count()
        speedup = {
            "cost_vs_registry": round(
                timings["cold_registry"] / timings["cold_cost"], 2
            ),
        }
        section = {
            "days": float(BENCH_DAYS),
            "jobs": BENCH_JOBS,
            "seconds": {k: round(v, 3) for k, v in timings.items()},
            "speedup": speedup,
            "reports_byte_identical": byte_identical,
            "cost_spread": cost_spread,
            "tasks_costed": len(known),
            "cpus": cpus,
        }
        if cpus == 1:
            # Scheduling reorders work across workers; with one CPU the
            # two regimes are the same serial run plus noise.
            speedup["cost_vs_registry"] = None
            section["note"] = (
                "single-CPU host: cost_vs_registry reported as null "
                "(LPT scheduling cannot change a serial makespan)"
            )

        target = ROOT / "BENCH_report.json"
        try:
            payload = json.loads(target.read_text())
            if not isinstance(payload, dict):
                payload = {}
        except (OSError, ValueError):
            payload = {}
        payload["scheduling"] = section
        target.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote the scheduling section of {target}")
        print(json.dumps(section["speedup"], indent=2))
        return 0 if byte_identical else 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
