"""Shared benchmark fixtures.

The benchmarks regenerate every table and figure of the paper on the
paper-scale synthetic trace (98 days by default; override with the
``REPRO_BENCH_DAYS`` environment variable for a quicker pass).  The
trace is generated once per session and shared.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.context import ExperimentContext, get_context

#: Paper-scale default; export REPRO_BENCH_DAYS=28 for a quick pass.
BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "98"))


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return get_context(days=BENCH_DAYS)


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
