"""Benchmark: Fig. 3 — per-sensor RMS error CDFs, first vs second order."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig3


def test_fig3(benchmark, ctx, capsys):
    result = run_once(benchmark, fig3.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    firsts = np.array([row[1] for row in result.rows])
    seconds = np.array([row[2] for row in result.rows])
    # CDF dominance: the second-order model wins on nearly every sensor.
    assert (seconds <= firsts).mean() > 0.9
