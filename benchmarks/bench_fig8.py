"""Benchmark: Fig. 8 — correlation clustering quality at k = 2..5."""

from benchmarks.conftest import run_once
from repro.experiments import fig8


def test_fig8(benchmark, ctx, capsys):
    result = run_once(benchmark, fig8.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    k2 = [row for row in result.rows if row[0] == 2]
    overall = k2[0][4]
    # Every correlation cluster stays below the overall spread and keeps
    # positive within-cluster residual correlation.
    assert all(row[3] < overall for row in k2)
    assert all(row[5] > 0.2 for row in k2)
