"""Benchmark: Fig. 7 — Euclidean clustering quality at k = 3, 4, 5."""

from benchmarks.conftest import run_once
from repro.experiments import fig7


def test_fig7(benchmark, ctx, capsys):
    result = run_once(benchmark, fig7.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    k3 = [row for row in result.rows if row[0] == 3]
    overall = k3[0][4]
    # At least one Euclidean cluster's spread approaches the overall
    # spread (the paper's "inconsistent" cluster).
    assert max(row[3] for row in k3) > 0.5 * overall
