"""Benchmark: Fig. 2 — spatial snapshot during a full seminar."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig2


def test_fig2(benchmark, ctx, capsys):
    result = run_once(benchmark, fig2.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    assert 1.0 < result.extras["spread"] < 4.0
    temps = {row[0]: row[4] for row in result.rows}
    zones = {row[0]: row[1] for row in result.rows}
    back = np.mean([t for s, t in temps.items() if zones[s] == "back"])
    tstat = np.mean([t for s, t in temps.items() if zones[s] == "thermostat"])
    assert back > tstat + 0.5
