"""Benchmark: closed-loop control on the reduced model (paper extension).

The paper's conclusion claims its simplified models are "a practical
basis for more accurate and effective HVAC control"; this benchmark
demonstrates it: MPC reading only the pipeline's two selected sensors
achieves better occupant-weighted comfort than the plant's PI loop on
its plume-biased wall thermostats.
"""

from datetime import datetime

from benchmarks.conftest import run_once
from repro.control import (
    CalendarForecaster,
    ForecastingController,
    MPCConfig,
    ReducedModelMPC,
    run_closed_loop,
)
from repro.control.closed_loop import SensorFeedbackController, make_disturbance_source
from repro.core import PipelineConfig, ThermalModelingPipeline
from repro.simulation import AuditoriumSimulator, SimulationConfig


def test_closed_loop_mpc_vs_pi(benchmark, ctx, capsys):
    def experiment():
        train = ctx.train_occupied_wireless
        pipeline = ThermalModelingPipeline(PipelineConfig(n_clusters=2, ridge=10.0))
        fitted = pipeline.fit(train)

        control_config = SimulationConfig(start=datetime(2013, 3, 18), days=4.0)
        positions = [train.sensor_positions[s] for s in fitted.selected_sensor_ids]
        baseline = run_closed_loop(control_config)

        mpc = ReducedModelMPC(fitted.model, n_flows=4, config=MPCConfig(setpoint=21.0))
        controller = SensorFeedbackController(
            mpc, positions, make_disturbance_source(control_config)
        )
        mpc_run = run_closed_loop(control_config, controller=controller)

        probe = AuditoriumSimulator(control_config)
        forecaster = CalendarForecaster(
            probe.calendar, probe.lighting, probe.weather,
            control_config.start, control_config.dt,
        )
        mpc2 = ReducedModelMPC(fitted.model, n_flows=4, config=MPCConfig(setpoint=21.0))
        forecast_run = run_closed_loop(
            control_config,
            controller=ForecastingController(mpc2, positions, forecaster),
        )
        return baseline.metrics, mpc_run.metrics, forecast_run.metrics

    pi, mpc, forecast = run_once(benchmark, experiment)
    with capsys.disabled():
        print(f"\nPI on thermostats : {pi.summary()}")
        print(f"MPC (persistence) : {mpc.summary()}")
        print(f"MPC (calendar)    : {forecast.summary()}")
    # The headline: better comfort from two well-chosen sensors.
    assert mpc.comfort_rms < pi.comfort_rms
    assert mpc.comfort_p95 < pi.comfort_p95
    # And the mechanism: the MPC actually cools the under-served room more.
    assert mpc.cooling_energy_kwh > pi.cooling_energy_kwh
    # Calendar-aware planning keeps the comfort and saves energy vs
    # persistence (pre-cooling beats chasing).
    assert forecast.comfort_rms <= mpc.comfort_rms + 0.05
    assert forecast.cooling_energy_kwh < mpc.cooling_energy_kwh
