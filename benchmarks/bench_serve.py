"""Multi-worker serving benchmark → ``serving`` section of
``BENCH_report.json``.

Boots the supervised prediction server (``repro serve --workers N``)
on an ephemeral port over a sealed snapshot of the analysis trace, then
load-tests it twice with :func:`repro.streaming.loadtest.run_loadtest`:

* ``steady``          — fixed request count across concurrent
  connections, no faults,
* ``fault_injection`` — same load with one worker SIGKILLed mid-run.

Both runs are *gated* before any number is reported, exactly like the
simulator benchmark gates on trace bit-identity:

* every served response must be byte-identical (modulo the wall-clock
  ``latency_s`` field) to the single-process ``PredictionService``
  answering the same requests, and
* zero accepted requests may be lost — including across the mid-run
  worker kill.

Environment knobs:

* ``REPRO_BENCH_SERVE_DAYS``     — trace days behind the snapshot (default 7),
* ``REPRO_BENCH_SERVE_REQUESTS`` — requests per run (default 200),
* ``REPRO_BENCH_SERVE_WORKERS``  — worker processes (default 2),
* ``REPRO_BENCH_SERVE_RATE``     — offered rate in req/s, 0 = max (default 0).

Run via ``make bench-json`` (or directly:
``PYTHONPATH=src python benchmarks/bench_serve.py``).  The section is
merged into an existing ``BENCH_report.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.core.artifacts import default_cache  # noqa: E402
from repro.data.synth import default_output  # noqa: E402
from repro.streaming import (  # noqa: E402
    OnlinePipeline,
    PredictionServer,
    PredictionService,
    ReplaySource,
    ServerConfig,
    ServiceConfig,
    WorkerPoolConfig,
    build_request,
    load_snapshot,
    save_snapshot,
)
from repro.streaming.loadtest import LoadTestConfig, run_loadtest  # noqa: E402

SERVE_DAYS = float(os.environ.get("REPRO_BENCH_SERVE_DAYS", "7"))
N_REQUESTS = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "200"))
N_WORKERS = int(os.environ.get("REPRO_BENCH_SERVE_WORKERS", "2"))
RATE_RPS = float(os.environ.get("REPRO_BENCH_SERVE_RATE", "0"))

SNAPSHOT = "bench-serve"
HORIZON_TICKS = 8
MAX_HORIZON = 64


def _seal_snapshot() -> None:
    """Stream the analysis trace into the shared serving snapshot."""
    if load_snapshot(SNAPSHOT) is not None:
        print(f"snapshot {SNAPSHOT!r} already sealed; reusing it")
        return
    print(f"sealing snapshot {SNAPSHOT!r} from a {SERVE_DAYS:g}-day trace ...")
    dataset = default_output(days=SERVE_DAYS).analysis_dataset
    pipeline = OnlinePipeline(
        dataset.sensor_ids, dataset.channels.n_channels, order=2
    )
    pipeline.run(ReplaySource(dataset))
    if save_snapshot(SNAPSHOT, pipeline) is None:
        raise SystemExit(
            "ERROR: the artifact cache is disabled (REPRO_CACHE=off); "
            "multi-worker serving needs it for the shared snapshot"
        )


def _expected_payloads(n_requests: int):
    """What the single-process service answers for the load-test ids."""
    pipeline = load_snapshot(SNAPSHOT, required=True)
    service = PredictionService(
        pipeline, ServiceConfig(max_queue=64, max_horizon_ticks=MAX_HORIZON)
    )
    held = pipeline.estimator.last_inputs()
    expected = {}
    for i in range(n_requests):
        rid = f"lt-{i}"
        service.submit(
            build_request(
                {"id": rid, "horizon_ticks": HORIZON_TICKS}, held, rid, MAX_HORIZON
            )
        )
        for response in service.drain():
            payload = response.to_payload()
            payload.pop("latency_s")
            expected[payload["id"]] = payload
    return expected


def _byte_identical(result, expected) -> bool:
    """Whether every served response matches the single-process answer."""
    for rid, payload in result.responses.items():
        if "predictions" not in payload:
            continue
        stripped = {k: v for k, v in payload.items() if k != "latency_s"}
        if expected.get(rid) != stripped:
            return False
    return True


def _start_server():
    """Boot the server in a thread; returns (thread, holder with port)."""
    config = ServerConfig(
        port=0,
        pool=WorkerPoolConfig(n_workers=N_WORKERS, snapshot_name=SNAPSHOT),
        allow_chaos=True,
    )
    started = threading.Event()
    holder = {}

    def _serve():
        async def _main():
            server = PredictionServer(config)
            holder["port"] = await server.start()
            started.set()
            holder["summary"] = await server.serve_until_shutdown()

        try:
            asyncio.run(_main())
        except Exception as exc:  # surfaced to the caller after the wait
            holder["error"] = exc
            started.set()

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    started.wait(timeout=180.0)
    if "error" in holder:
        raise holder["error"]
    return thread, holder


def main() -> int:
    if not default_cache().enabled:
        print(
            "ERROR: REPRO_CACHE=off; the serving benchmark needs the artifact cache",
            file=sys.stderr,
        )
        return 1
    _seal_snapshot()
    expected = _expected_payloads(N_REQUESTS)

    print(f"booting {N_WORKERS} workers ...")
    thread, holder = _start_server()
    port = holder["port"]

    print(f"steady run: {N_REQUESTS} requests ...")
    steady = run_loadtest(
        LoadTestConfig(
            port=port,
            n_requests=N_REQUESTS,
            rate_rps=RATE_RPS,
            n_connections=4,
            horizon_ticks=HORIZON_TICKS,
        )
    )
    print(
        f"  served {steady.served}/{steady.sent} at {steady.req_per_s():.0f} req/s "
        f"(p50 {steady.latency_percentile_s(50) * 1000:.1f} ms, "
        f"p99 {steady.latency_percentile_s(99) * 1000:.1f} ms)"
    )

    print(f"fault-injection run: {N_REQUESTS} requests, one worker killed mid-run ...")
    # The fault run is paced to span ~2 s so the kill lands while
    # requests are genuinely in flight (an unpaced run can finish
    # before the injection timer fires).
    fault_rate = RATE_RPS if RATE_RPS > 0 else N_REQUESTS / 2.0
    fault = run_loadtest(
        LoadTestConfig(
            port=port,
            n_requests=N_REQUESTS,
            rate_rps=fault_rate,
            n_connections=4,
            horizon_ticks=HORIZON_TICKS,
            kill_worker_after_s=0.3,
            shutdown_after=True,
        )
    )
    thread.join(timeout=120.0)
    summary = holder.get("summary", {})
    print(
        f"  served {fault.served}/{fault.sent}, lost {fault.lost}, "
        f"killed worker {fault.killed_worker}, pool restarts {summary.get('restarts')}"
    )

    byte_identical = _byte_identical(steady, expected) and _byte_identical(
        fault, expected
    )
    zero_lost = steady.lost == 0 and fault.lost == 0
    if not byte_identical:
        print(
            "ERROR: multi-worker responses disagree with the single-process "
            "service; refusing to report timings",
            file=sys.stderr,
        )
        return 1
    if not zero_lost:
        print(
            "ERROR: accepted requests were lost; refusing to report timings",
            file=sys.stderr,
        )
        return 1

    section = {
        "workers": N_WORKERS,
        "days": SERVE_DAYS,
        "requests_per_run": N_REQUESTS,
        "offered_rate_rps": RATE_RPS,
        "steady": steady.as_dict(),
        "fault_injection": fault.as_dict(),
        "byte_identical": True,
        "zero_lost": True,
        "drain_clean": bool(summary.get("drain_clean")),
        "pool": {
            key: summary.get(key)
            for key in ("served", "shed", "retried", "restarts", "deadline_misses")
        },
    }

    target = ROOT / "BENCH_report.json"
    try:
        payload = json.loads(target.read_text())
        if not isinstance(payload, dict):
            payload = {}
    except (OSError, ValueError):
        payload = {}
    payload["serving"] = section
    target.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote the serving section of {target}")
    print(
        json.dumps(
            {
                "steady_req_per_s": section["steady"]["req_per_s"],
                "fault_req_per_s": section["fault_injection"]["req_per_s"],
                "p99_latency_s": section["steady"]["p99_latency_s"],
            },
            indent=2,
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
