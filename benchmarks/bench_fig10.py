"""Benchmark: Fig. 10 — selection strategies across cluster counts."""

from benchmarks.conftest import run_once
from repro.experiments import fig10


def test_fig10(benchmark, ctx, capsys):
    result = run_once(benchmark, fig10.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    for row in result.rows:
        _, sms, srs, rs = row
        assert sms <= rs
        assert srs <= rs
