"""Ablation benchmarks for the design choices DESIGN.md calls out.

* ridge strength in the piecewise LSQ (the paper's overfitting story),
* identification sampling period,
* similarity-graph construction (Gaussian width / edge threshold),
* eigengap on raw vs log eigenvalues.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.cluster.eigengap import choose_k_by_eigengap
from repro.cluster.laplacian import laplacian_eigensystem
from repro.cluster.similarity import SimilarityOptions, correlation_similarity, euclidean_similarity
from repro.data.assemble import AssemblyConfig, assemble_dataset
from repro.data.modes import OCCUPIED
from repro.experiments.table1 import OCCUPIED_EVAL
from repro.geometry.layout import THERMOSTAT_IDS
from repro.sysid.evaluation import fit_and_evaluate


def test_ablation_ridge(benchmark, ctx, capsys):
    """Ridge on the full 27-sensor second-order model: plain LSQ (the
    paper's choice) should be near-optimal on full training data, while
    heavy ridge under-fits."""

    def sweep():
        out = {}
        for ridge in (0.0, 1e-3, 1e-1, 10.0):
            _, ev = fit_and_evaluate(
                ctx.train_occupied,
                ctx.valid_occupied,
                order=2,
                mode=OCCUPIED,
                ridge=ridge,
                evaluation=OCCUPIED_EVAL,
            )
            out[ridge] = ev.overall_percentile(90)
        return out

    errors = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nridge ablation (90th pct RMS):", {k: round(v, 3) for k, v in errors.items()})
    assert errors[0.0] < errors[10.0] * 1.5  # heavy ridge is never much better
    assert min(errors.values()) < 1.5


def test_ablation_sampling_period(benchmark, ctx, capsys):
    """Identification sampling period: the 15-minute default should not
    be dominated by coarser assembly."""

    def sweep():
        out = {}
        for period in (900.0, 1800.0):
            dataset = assemble_dataset(
                ctx.output.raw,
                config=AssemblyConfig(period=period),
                sensor_ids=list(ctx.analysis.sensor_ids),
            )
            train, valid = dataset.split_half_days(OCCUPIED)
            _, ev = fit_and_evaluate(
                train, valid, order=2, mode=OCCUPIED, evaluation=OCCUPIED_EVAL
            )
            out[period] = ev.overall_percentile(90)
        return out

    errors = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nsampling-period ablation (90th pct RMS):", {k: round(v, 3) for k, v in errors.items()})
    assert errors[900.0] <= errors[1800.0] * 1.25


def test_ablation_similarity_construction(benchmark, ctx, capsys):
    """Graph construction: thresholding weak edges must not destroy the
    two-zone structure found by correlation similarity."""

    def sweep():
        train = ctx.train_occupied_wireless
        out = {}
        for threshold in (0.0, 0.2, 0.5):
            weights = correlation_similarity(
                train.temperatures, SimilarityOptions(edge_threshold=threshold)
            )
            eigenvalues, _ = laplacian_eigensystem(weights)
            k, _ = choose_k_by_eigengap(eigenvalues)
            out[threshold] = k
        return out

    ks = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nedge-threshold ablation (chosen k):", ks)
    # Mild sparsification preserves the two-zone structure; aggressive
    # thresholds (0.5) may fragment a zone — the ablation's finding.
    assert ks[0.0] == 2 and ks[0.2] == 2
    assert ks[0.5] >= 2


def test_ablation_model_order(benchmark, ctx, capsys):
    """Orders beyond 2: the paper skipped them for computational cost;
    this sweep checks whether a 3rd or 4th lag would have paid off."""
    from repro.sysid.arx import identify_arx
    from repro.sysid.evaluation import evaluate_model

    def sweep():
        out = {}
        for order in (1, 2, 3, 4):
            model = identify_arx(
                ctx.train_occupied, order=order, mode=OCCUPIED, ridge=1e-8
            )
            ev = evaluate_model(
                model, ctx.valid_occupied, mode=OCCUPIED, options=OCCUPIED_EVAL
            )
            out[order] = ev.overall_percentile(90)
        return out

    errors = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\nmodel-order ablation (90th pct RMS):", {k: round(v, 3) for k, v in errors.items()})
    # Each extra lag recovers more of the hidden state (envelope masses,
    # duct lag), so the error keeps falling past order 2 on this
    # substrate — the paper's computational-cost stopping point left
    # accuracy on the table.  Recorded in EXPERIMENTS.md.
    assert errors[2] < errors[1]
    assert errors[3] <= errors[2] + 0.05
    assert errors[4] <= errors[3] + 0.05


def test_ablation_clustering_stability(benchmark, ctx, capsys):
    """The paper's consistency claim, quantified: correlation clustering
    should reproduce (nearly) the same partition on different day
    subsets; Euclidean clustering is less stable."""
    from repro.cluster.stability import bootstrap_stability

    def sweep():
        out = {}
        for method in ("correlation", "euclidean"):
            result = bootstrap_stability(
                ctx.wireless, method, k=2, n_bootstrap=6, seed=5
            )
            out[method] = (result.mean_ari, result.min_ari)
        return out

    scores = run_once(benchmark, sweep)
    with capsys.disabled():
        print(
            "\nclustering stability (mean/min ARI over day bootstraps):",
            {m: (round(a, 2), round(b, 2)) for m, (a, b) in scores.items()},
        )
    assert scores["correlation"][0] > 0.8
    assert scores["correlation"][0] >= scores["euclidean"][0]


def test_ablation_eigengap_log_vs_raw(benchmark, ctx, capsys):
    """The paper's log-eigengap: compare the cluster count it selects
    with a raw-eigenvalue gap rule."""

    def sweep():
        train = ctx.train_occupied_wireless
        weights = correlation_similarity(train.temperatures)
        eigenvalues, _ = laplacian_eigensystem(weights)
        k_log, _ = choose_k_by_eigengap(eigenvalues)
        raw_gaps = np.diff(eigenvalues)
        k_raw = int(np.argmax(raw_gaps[1 : len(eigenvalues) // 2])) + 2
        return {"log": k_log, "raw": k_raw, "eigenvalues": eigenvalues[:6]}

    out = run_once(benchmark, sweep)
    with capsys.disabled():
        print("\neigengap ablation:", {k: v for k, v in out.items() if k != "eigenvalues"})
    assert out["log"] == 2
