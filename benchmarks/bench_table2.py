"""Benchmark: Table II — sensor-selection strategies (2 clusters).

Shape: SMS < SRS < RS and the HVAC thermostats are the worst of the
cluster-agnostic baselines.
"""

from benchmarks.conftest import run_once
from repro.experiments import table2


def test_table2(benchmark, ctx, capsys):
    result = run_once(benchmark, table2.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    values = {row[0]: row[1] for row in result.rows}
    assert values["SMS"] < values["SRS"] < values["RS"]
    assert values["Thermostats"] > values["SRS"]
