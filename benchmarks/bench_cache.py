"""Artifact-cache and parallel-runner benchmark → ``BENCH_report.json``.

Measures the end-to-end wall-clock of ``repro report`` in fresh
subprocesses under four regimes:

* ``cold_serial``   — empty artifact cache, ``--jobs 1`` (trace is
  generated from scratch; the pre-PR status quo for every process),
* ``warm_serial``   — same cache directory again, ``--jobs 1`` (trace
  read back from the content-addressed store),
* ``cold_jobs``     — a second empty cache directory, ``--jobs N``,
* ``warm_jobs``     — warm cache, ``--jobs N``.

It also asserts that every regime produced a *byte-identical* report,
so the cache and the process-parallel runner can never silently change
results while speeding them up.

Environment knobs:

* ``REPRO_BENCH_DAYS``  — trace length (default 98, the paper scale;
  CI's smoke job uses 7),
* ``REPRO_BENCH_JOBS``  — worker processes for the parallel regimes
  (default 4).

Run via ``make bench-json`` (or directly:
``PYTHONPATH=src python benchmarks/bench_cache.py``).  The JSON lands
in the repository root as ``BENCH_report.json`` so successive PRs can
compare numbers.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"

BENCH_DAYS = os.environ.get("REPRO_BENCH_DAYS", "98")
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))


def _run_report(cache_dir: Path, output: Path, jobs: int) -> float:
    """Time one ``repro report`` in a fresh subprocess; returns seconds."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "report",
        "--days",
        BENCH_DAYS,
        "--jobs",
        str(jobs),
        "--output",
        str(output),
    ]
    begin = time.perf_counter()
    subprocess.run(command, check=True, env=env, stdout=subprocess.DEVNULL)
    return time.perf_counter() - begin


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
    try:
        cache_serial = workdir / "cache-serial"
        cache_jobs = workdir / "cache-jobs"
        reports = {
            regime: workdir / f"report-{regime}.txt"
            for regime in ("cold_serial", "warm_serial", "cold_jobs", "warm_jobs")
        }

        print(f"benchmarking repro report --days {BENCH_DAYS} (jobs={BENCH_JOBS}) ...")
        timings = {}
        timings["cold_serial"] = _run_report(cache_serial, reports["cold_serial"], jobs=1)
        print(f"  cold, serial : {timings['cold_serial']:8.2f} s")
        timings["warm_serial"] = _run_report(cache_serial, reports["warm_serial"], jobs=1)
        print(f"  warm, serial : {timings['warm_serial']:8.2f} s")
        timings["cold_jobs"] = _run_report(cache_jobs, reports["cold_jobs"], jobs=BENCH_JOBS)
        print(f"  cold, jobs={BENCH_JOBS}: {timings['cold_jobs']:8.2f} s")
        timings["warm_jobs"] = _run_report(cache_serial, reports["warm_jobs"], jobs=BENCH_JOBS)
        print(f"  warm, jobs={BENCH_JOBS}: {timings['warm_jobs']:8.2f} s")

        texts = {regime: path.read_text() for regime, path in reports.items()}
        byte_identical = len(set(texts.values())) == 1
        if not byte_identical:
            print("ERROR: reports differ across cache/parallelism regimes", file=sys.stderr)

        cpus = os.cpu_count()
        speedup = {
            "warm_vs_cold_serial": round(
                timings["cold_serial"] / timings["warm_serial"], 2
            ),
            "cold_jobs_vs_cold_serial": round(
                timings["cold_serial"] / timings["cold_jobs"], 2
            ),
            "warm_jobs_vs_cold_serial": round(
                timings["cold_serial"] / timings["warm_jobs"], 2
            ),
        }
        payload = {
            "benchmark": "repro report",
            "days": float(BENCH_DAYS),
            "jobs": BENCH_JOBS,
            "seconds": {k: round(v, 3) for k, v in timings.items()},
            "speedup": speedup,
            "reports_byte_identical": byte_identical,
            "python": sys.version.split()[0],
            # the cold_jobs ratio is meaningless without knowing how
            # many cores the measuring box actually had
            "cpus": cpus,
        }
        if cpus == 1:
            # A ratio of two serial runs says nothing about the runner's
            # parallelism — don't let it masquerade as a measurement.
            speedup["cold_jobs_vs_cold_serial"] = None
            payload["note"] = (
                "single-CPU host: cold_jobs_vs_cold_serial reported as null "
                "(process parallelism cannot speed anything up here)"
            )
        target = ROOT / "BENCH_report.json"
        try:
            existing = json.loads(target.read_text())
            if not isinstance(existing, dict):
                existing = {}
        except (OSError, ValueError):
            existing = {}
        # Merge over whatever the sibling benchmarks (sim, fleet,
        # serving, ingest, scheduling, ...) already wrote, dropping only
        # our own possibly-stale conditional key.
        existing.pop("note", None)
        existing.update(payload)
        payload = existing
        target.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {target}")
        print(json.dumps(payload["speedup"], indent=2))
        return 0 if byte_identical else 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
