"""Benchmark: Fig. 4 — one-day measured vs predicted trace (sensor 1)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig4


def test_fig4(benchmark, ctx, capsys):
    result = run_once(benchmark, fig4.run, context=ctx)
    with capsys.disabled():
        print("\n" + "\n".join(result.render().splitlines()[:14]))
        for note in result.notes:
            print("note:", note)
    measured = result.extras["measured"]
    rms1 = np.sqrt(np.mean((result.extras["first_order"] - measured) ** 2))
    rms2 = np.sqrt(np.mean((result.extras["second_order"] - measured) ** 2))
    assert rms2 <= rms1
