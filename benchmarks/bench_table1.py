"""Benchmark: Table I — RMS prediction error at the 90th percentile.

Regenerates the paper's headline accuracy table (occupied/unoccupied ×
first/second order) and asserts its shape: second-order beats
first-order and the occupied mode is harder.
"""

from benchmarks.conftest import run_once
from repro.experiments import table1


def test_table1(benchmark, ctx, capsys):
    result = run_once(benchmark, table1.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    values = {(row[0], row[1]): row[2] for row in result.rows}
    assert values[("occupied", 2)] < values[("occupied", 1)]
    assert values[("unoccupied", 2)] <= values[("unoccupied", 1)] + 0.05
    assert values[("unoccupied", 2)] < values[("occupied", 2)]
