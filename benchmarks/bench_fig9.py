"""Benchmark: Fig. 9 — error vs sensors selected per cluster (SRS)."""

from benchmarks.conftest import run_once
from repro.experiments import fig9


def test_fig9(benchmark, ctx, capsys):
    result = run_once(benchmark, fig9.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    errors = [row[1] for row in result.rows]
    assert errors[-1] < errors[0]
