"""Benchmark: Fig. 11 — simplified-model accuracy across cluster counts."""

from benchmarks.conftest import run_once
from repro.experiments import fig11


def test_fig11(benchmark, ctx, capsys):
    result = run_once(benchmark, fig11.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    sms_wins = sum(1 for row in result.rows if row[1] <= row[3])
    assert sms_wins >= 0.7 * len(result.rows)
