"""Benchmark: Fig. 5 — training-horizon and prediction-length sweeps."""

from benchmarks.conftest import run_once
from repro.experiments import fig5


def test_fig5(benchmark, ctx, capsys):
    result = run_once(benchmark, fig5.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    horizon_rows = [row for row in result.rows if row[0] == "horizon_hours"]
    assert len(horizon_rows) == 5
    # Error grows with the prediction horizon (both orders).
    assert horizon_rows[-1][2] > horizon_rows[0][2]
    assert horizon_rows[-1][3] > horizon_rows[0][3]
    # Second order at or below first order at the longest horizon.
    assert horizon_rows[-1][3] <= horizon_rows[-1][2]
    training_rows = [row for row in result.rows if row[0] == "training_days"]
    assert training_rows, "training sweep needs enough usable days"
