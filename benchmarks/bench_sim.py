"""Step-kernel simulator benchmark → ``sim`` + ``fleet`` sections of
``BENCH_report.json``.

Times the closed-loop auditorium simulation under three drivers:

* ``loop``    — the monolithic reference loop (``run_loop``), kept as
  the readable specification of the step semantics,
* ``kernel``  — the staged step-kernel pipeline (``run``), one trace in
  one monolithic chunk,
* ``chunked`` — the same kernels driven through ``iter_chunks`` in
  1-day slabs, the shape the streaming/caching layers consume.

All three must produce *bit-identical* traces (asserted with
``np.array_equal`` before any number is reported), so the speedup can
never come from changing the physics.

The ``fleet`` section then batches a generated building fleet through
:class:`repro.simulation.fleet.FleetSimulator` and compares one
vectorized pass against running every building's solo simulator
sequentially — again gated on per-building bit-identity first.

Environment knobs:

* ``REPRO_BENCH_SIM_DAYS``      — simulated days per timing (default 3),
* ``REPRO_BENCH_SIM_REPEATS``   — repeats per engine, best-of (default 2),
* ``REPRO_BENCH_FLEET_SIZE``    — buildings in the fleet section (default 8).

Run via ``make bench-json`` (or directly:
``PYTHONPATH=src python benchmarks/bench_sim.py``).  The section is
*merged* into an existing ``BENCH_report.json`` so the cache benchmark's
numbers survive.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.simulation import AuditoriumSimulator, SimulationConfig  # noqa: E402
from repro.simulation.fleet import FleetConfig, FleetSimulator, build_fleet  # noqa: E402

SIM_DAYS = float(os.environ.get("REPRO_BENCH_SIM_DAYS", "3"))
REPEATS = int(os.environ.get("REPRO_BENCH_SIM_REPEATS", "2"))
FLEET_SIZE = int(os.environ.get("REPRO_BENCH_FLEET_SIZE", "8"))

#: Result arrays compared across engines for bit-identity.
PARITY_FIELDS = (
    "zone_temps",
    "mass_temps",
    "vav_flows",
    "vav_temps",
    "co2",
    "humidity_ratio",
    "thermostat_readings",
    "thermostat_true",
)


def _time_engine(run):
    """Best-of-``REPEATS`` wall-clock of one engine; returns (s, result)."""
    best, result = float("inf"), None
    for _ in range(REPEATS):
        begin = time.perf_counter()
        candidate = run()
        best = min(best, time.perf_counter() - begin)
        result = candidate
    return best, result


def _bench_fleet():
    """Batched fleet pass vs sequential solo runs; returns the section.

    Returns ``None`` when the per-building parity gate fails — the
    caller treats that as a hard error, exactly like the engine gate.
    """
    specs = build_fleet(FleetConfig(n_buildings=FLEET_SIZE, days=SIM_DAYS))
    n_steps = specs[0].simulation.n_steps

    print(f"benchmarking a {FLEET_SIZE}-building fleet at {SIM_DAYS:g} days each ...")
    batched_s, fleet = _time_engine(lambda: FleetSimulator(specs).run())

    def run_sequential():
        return [spec.simulator().run() for spec in specs]

    sequential_s, solos = _time_engine(run_sequential)

    bit_identical = all(
        np.array_equal(getattr(batched, field), getattr(solo, field))
        for batched, solo in zip(fleet.results, solos)
        for field in PARITY_FIELDS
    )
    if not bit_identical:
        return None

    building_steps = FLEET_SIZE * n_steps
    cohorts = [cohort.n_buildings for cohort in FleetSimulator(specs).cohorts]
    print(
        f"  batched   : {batched_s:7.2f} s  ({building_steps / batched_s:8.0f} building-steps/s, "
        f"cohorts {cohorts})"
    )
    print(f"  sequential: {sequential_s:7.2f} s  ({building_steps / sequential_s:8.0f} building-steps/s)")
    return {
        "buildings": FLEET_SIZE,
        "days": SIM_DAYS,
        "n_steps": n_steps,
        "cohorts": cohorts,
        "building_steps_per_second": {
            "batched": round(building_steps / batched_s, 1),
            "sequential": round(building_steps / sequential_s, 1),
        },
        "speedup": {"batched_vs_sequential": round(sequential_s / batched_s, 2)},
        "bit_identical": True,
    }


def main() -> int:
    config = SimulationConfig(days=SIM_DAYS)
    n_steps = config.n_steps
    day_steps = max(1, int(round(86400.0 / config.dt)))
    engines = {
        "loop": lambda: AuditoriumSimulator(config).run_loop(),
        "kernel": lambda: AuditoriumSimulator(config).run(),
        "chunked": lambda: AuditoriumSimulator(config).run(chunk_steps=day_steps),
    }

    print(f"benchmarking the simulator at {SIM_DAYS:g} days ({n_steps} steps) ...")
    seconds, results = {}, {}
    for name, run in engines.items():
        seconds[name], results[name] = _time_engine(run)
        print(f"  {name:8s}: {seconds[name]:7.2f} s  ({n_steps / seconds[name]:8.0f} steps/s)")

    reference = results["loop"]
    bit_identical = all(
        np.array_equal(getattr(results[name], field), getattr(reference, field))
        for name in engines
        for field in PARITY_FIELDS
    )
    if not bit_identical:
        print("ERROR: engines disagree on the trace; refusing to report timings", file=sys.stderr)
        return 1

    section = {
        "days": SIM_DAYS,
        "n_steps": n_steps,
        "chunk_steps": day_steps,
        "steps_per_second": {k: round(n_steps / v, 1) for k, v in seconds.items()},
        "speedup": {
            "kernel_vs_loop": round(seconds["loop"] / seconds["kernel"], 2),
            "chunked_vs_loop": round(seconds["loop"] / seconds["chunked"], 2),
        },
        "bit_identical": bit_identical,
    }

    fleet_section = _bench_fleet()
    if fleet_section is None:
        print(
            "ERROR: batched fleet disagrees with solo runs; refusing to report timings",
            file=sys.stderr,
        )
        return 1

    target = ROOT / "BENCH_report.json"
    try:
        payload = json.loads(target.read_text())
        if not isinstance(payload, dict):
            payload = {}
    except (OSError, ValueError):
        payload = {}
    payload["sim"] = section
    payload["fleet"] = fleet_section
    target.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote the sim and fleet sections of {target}")
    print(json.dumps({**section["speedup"], **fleet_section["speedup"]}, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
