"""Benchmark: Fig. 6 — Euclidean vs correlation spectral clustering."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import fig6


def test_fig6(benchmark, ctx, capsys):
    result = run_once(benchmark, fig6.run, context=ctx)
    with capsys.disabled():
        print("\n" + result.render())
    purity = {}
    for row in result.rows:
        purity.setdefault(row[0], []).append(row[4])
    # Correlation clustering recovers the physical zones cleanly.
    assert np.mean(purity["correlation"]) > 0.95
    assert np.mean(purity["euclidean"]) <= np.mean(purity["correlation"])
