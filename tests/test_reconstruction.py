"""Tests for Gaussian-field reconstruction of the removed sensors."""

import numpy as np
import pytest

from repro.data.modes import OCCUPIED
from repro.errors import SelectionError
from repro.selection import near_mean_selection, reconstruct_field
from repro.selection.base import SelectionResult
from tests.test_cluster import two_group_traces
from tests.test_cluster_baselines_quality import make_clustering, traces_dataset


@pytest.fixture
def grouped_split():
    """Two-zone synthetic data split in half along time."""
    traces = two_group_traces(gap=3.0, n_ticks=1600, seed=4)
    train = traces_dataset(traces[:800])
    validate = traces_dataset(traces[800:])
    clustering = make_clustering(train, [0] * 5 + [1] * 5, 2)
    return train, validate, clustering


class TestReconstruction:
    def test_reconstructs_within_noise(self, grouped_split):
        train, validate, clustering = grouped_split
        selection = near_mean_selection(clustering, train)
        result = reconstruct_field(selection, train, validate)
        assert len(result.kept_ids) == 2
        assert len(result.removed_ids) == 8
        # Each group's sensors are (shared signal + small noise), so one
        # kept sensor per group reconstructs the rest well.
        assert result.overall_rms() < 0.3

    def test_cross_zone_selection_reconstructs_worse(self, grouped_split):
        train, validate, clustering = grouped_split
        good = SelectionResult(strategy="x", assignment={0: (1,), 1: (6,)})
        bad = SelectionResult(strategy="x", assignment={0: (1,), 1: (2,)})  # both in zone A
        good_rms = reconstruct_field(good, train, validate).overall_rms()
        bad_rms = reconstruct_field(bad, train, validate).overall_rms()
        assert good_rms < bad_rms

    def test_per_sensor_and_worst(self, grouped_split):
        train, validate, clustering = grouped_split
        selection = near_mean_selection(clustering, train)
        result = reconstruct_field(selection, train, validate)
        per_sensor = result.rms_per_sensor()
        assert set(per_sensor) == set(result.removed_ids)
        assert result.worst_sensor() in result.removed_ids

    def test_kept_rows_with_gaps_skipped(self, grouped_split):
        train, validate, clustering = grouped_split
        selection = near_mean_selection(clustering, train)
        kept = selection.sensors()[0]
        col = validate.column_of(kept)
        validate.temperatures[:50, col] = np.nan
        result = reconstruct_field(selection, train, validate)
        assert np.isnan(result.reconstructed[:50]).all()
        assert np.isfinite(result.reconstructed[50:]).all()

    def test_everything_kept_rejected(self, grouped_split):
        train, validate, _ = grouped_split
        selection = SelectionResult(
            strategy="x", assignment={0: tuple(train.sensor_ids)}
        )
        with pytest.raises(SelectionError):
            reconstruct_field(selection, train, validate)

    def test_real_dataset_reconstruction(self, month_dataset):
        """Two SMS sensors retain most of the 27-point field."""
        from repro.cluster import cluster_sensors
        from repro.geometry.layout import THERMOSTAT_IDS

        wireless = month_dataset.select_sensors(
            [s for s in month_dataset.sensor_ids if s not in THERMOSTAT_IDS]
        )
        train, validate = wireless.split_half_days(OCCUPIED)
        clustering = cluster_sensors(train, method="correlation", k=2)
        selection = near_mean_selection(clustering, train)
        result = reconstruct_field(selection, train, validate)
        assert len(result.removed_ids) == 23
        assert result.overall_rms() < 0.6
