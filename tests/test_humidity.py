"""Tests for psychrometrics, the moisture balance and humidity sensing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SensingError
from repro.simulation.humidity import (
    MoistureBalance,
    MoistureConfig,
    humidity_ratio_from_rh,
    relative_humidity,
    relative_humidity_array,
    saturation_humidity_ratio,
    saturation_pressure,
)


class TestPsychrometrics:
    def test_saturation_pressure_reference_points(self):
        # Magnus formula: ~2339 Pa at 20 degC, ~4246 Pa at 30 degC.
        assert saturation_pressure(20.0) == pytest.approx(2339.0, rel=0.02)
        assert saturation_pressure(30.0) == pytest.approx(4246.0, rel=0.02)

    def test_saturation_ratio_increases_with_temperature(self):
        ratios = [saturation_humidity_ratio(t) for t in (5.0, 15.0, 25.0)]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_rh_roundtrip(self):
        ratio = humidity_ratio_from_rh(45.0, 21.0)
        assert relative_humidity(ratio, 21.0) == pytest.approx(45.0, abs=1e-9)

    def test_rh_falls_as_air_warms(self):
        ratio = humidity_ratio_from_rh(50.0, 20.0)
        assert relative_humidity(ratio, 25.0) < 50.0

    def test_supersaturation_clips(self):
        ratio = humidity_ratio_from_rh(100.0, 25.0)
        assert relative_humidity(ratio, 15.0) == 100.0

    def test_vectorized_matches_scalar(self):
        ratios = np.array([0.004, 0.008, 0.012])
        temps = np.array([18.0, 21.0, 24.0])
        vector = relative_humidity_array(ratios, temps)
        scalar = [relative_humidity(r, t) for r, t in zip(ratios, temps)]
        np.testing.assert_allclose(vector, scalar)

    def test_rh_input_validated(self):
        with pytest.raises(ConfigurationError):
            humidity_ratio_from_rh(150.0, 20.0)


class TestMoistureBalance:
    def test_occupants_raise_humidity(self):
        balance = MoistureBalance(room_volume=1920.0)
        start = balance.ratio
        for _ in range(60):
            balance.step(60.0, occupants=90.0, supply_flow_m3s=0.0, fresh_fraction=0.3,
                         discharge_temp_c=20.0, ambient_temp_c=10.0)
        assert balance.ratio > start

    def test_cold_coil_dehumidifies(self):
        config = MoistureConfig(initial_rh=70.0)
        balance = MoistureBalance(room_volume=1920.0, config=config, initial_temp_c=22.0)
        start = balance.ratio
        for _ in range(600):
            balance.step(60.0, occupants=0.0, supply_flow_m3s=2.0, fresh_fraction=0.3,
                         discharge_temp_c=13.0, ambient_temp_c=20.0)
        assert balance.ratio < start
        # Equilibrium at (or below) the coil's saturation cap.
        cap = config.coil_saturation_fraction * saturation_humidity_ratio(13.0)
        assert balance.ratio <= cap * 1.05

    def test_ratio_never_negative(self):
        balance = MoistureBalance(room_volume=100.0, initial_temp_c=20.0)
        for _ in range(1000):
            balance.step(600.0, occupants=0.0, supply_flow_m3s=5.0, fresh_fraction=1.0,
                         discharge_temp_c=0.0, ambient_temp_c=-20.0)
        assert balance.ratio >= 0.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MoistureBalance(room_volume=0.0)
        with pytest.raises(ConfigurationError):
            MoistureConfig(outdoor_rh=120.0)
        with pytest.raises(ConfigurationError):
            MoistureConfig(coil_saturation_fraction=0.0)


class TestHumiditySensing:
    def test_streams_for_wireless_units_only(self, week_output):
        raw = week_output.raw
        assert len(raw.humidity_streams) == 39  # all wireless, no thermostats
        assert 40 not in raw.humidity_streams
        with pytest.raises(SensingError):
            raw.humidity_of(40)

    def test_humidity_shares_temperature_report_times(self, week_output):
        raw = week_output.raw
        for sid in (1, 13, 27):
            np.testing.assert_array_equal(
                raw.humidity_of(sid).times, raw.stream_of(sid).times
            )

    def test_values_are_percentages(self, week_output):
        values = week_output.raw.humidity_of(13).values
        assert values.min() >= 0.0 and values.max() <= 100.0
        assert values.std() > 0.5  # actually varies

    def test_cool_front_reads_higher_rh_than_warm_back(self, week_output):
        """Same moisture, lower temperature => higher relative humidity."""
        raw = week_output.raw
        sim = week_output.simulation
        k = int(np.argmax(sim.occupancy))
        front = raw.layout[13].position
        back = raw.layout[27].position
        rh_front = sim.relative_humidity_trace(front)[k]
        rh_back = sim.relative_humidity_trace(back)[k]
        assert rh_front > rh_back

    def test_simulation_humidity_trajectory(self, week_output):
        ratio = week_output.simulation.humidity_ratio
        assert ratio.shape == (week_output.simulation.n_steps,)
        assert (ratio >= 0).all() and ratio.max() < 0.03
