"""Tests for the experiment task graph, cost model and scheduler."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import DataError, ExperimentError
from repro.experiments import EXPERIMENTS, SHARDED_EXPERIMENTS
from repro.experiments.context import get_context
from repro.experiments.costs import CostModel, costs_enabled, costs_key
from repro.experiments.graph import (
    CONTEXT_TASK_ID,
    ExperimentPlan,
    Task,
    TaskGraph,
    build_graph,
    build_plan,
    build_plans,
    reduce_monolithic,
)
from repro.experiments.runner import run_experiments_detailed, schedule_tasks


def _noop(days, seed):
    return None


def _task(task_id, experiment_id="exp", deps=()):
    return Task(task_id=task_id, experiment_id=experiment_id, fn=_noop, deps=deps)


class TestTaskGraph:
    def test_duplicate_task_id_rejected(self):
        graph = TaskGraph()
        graph.add(_task("a"))
        with pytest.raises(ExperimentError, match="duplicate"):
            graph.add(_task("a"))

    def test_unknown_dependency_rejected(self):
        graph = TaskGraph()
        graph.add(_task("a", deps=("ghost",)))
        with pytest.raises(ExperimentError, match="ghost"):
            graph.validate()

    def test_cycle_rejected(self):
        graph = TaskGraph()
        graph.add(_task("a", deps=("b",)))
        graph.add(_task("b", deps=("a",)))
        with pytest.raises(ExperimentError, match="cycle"):
            graph.validate()

    def test_ready_respects_dependencies_and_insertion_order(self):
        graph = TaskGraph()
        graph.add(_task("a"))
        graph.add(_task("b", deps=("a",)))
        graph.add(_task("c"))
        assert [t.task_id for t in graph.ready([])] == ["a", "c"]
        assert [t.task_id for t in graph.ready(["a", "c"])] == ["b"]

    def test_build_graph_threads_context_dependency(self):
        plans = build_plans(["fig2", "ext-fleet"], days=7.0)
        graph = build_graph(plans.values())
        assert CONTEXT_TASK_ID in graph
        for task in graph.tasks:
            if task.task_id != CONTEXT_TASK_ID:
                assert CONTEXT_TASK_ID in task.deps
        # ext-fleet buildings additionally wait for the fleet warm task.
        building = graph.task("ext-fleet/building-0")
        assert "ext-fleet/warm" in building.deps
        # Only the context task is ready at the start.
        assert [t.task_id for t in graph.ready([])] == [CONTEXT_TASK_ID]


class TestExperimentPlan:
    def test_empty_plan_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            ExperimentPlan(experiment_id="exp", shards=(), reduce_fn=reduce_monolithic)

    def test_foreign_experiment_id_rejected(self):
        with pytest.raises(ExperimentError, match="claims experiment"):
            ExperimentPlan(
                experiment_id="exp",
                shards=(_task("t", experiment_id="other"),),
                reduce_fn=reduce_monolithic,
            )

    def test_unsplit_experiment_gets_monolithic_plan(self):
        plan = build_plan("fig2", days=7.0)
        assert plan.task_ids == ("fig2",)
        assert plan.shards[0].experiment_id == "fig2"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="fig99"):
            build_plan("fig99", days=7.0)

    def test_dominant_experiments_are_sharded(self):
        assert set(SHARDED_EXPERIMENTS) == {"table1", "robustness", "ext-fleet"}
        assert len(build_plan("table1", days=7.0).shards) == 4
        assert len(build_plan("robustness", days=7.0).shards) == 5
        assert len(build_plan("ext-fleet", days=7.0).shards) == 9

    def test_tasks_are_picklable(self):
        for experiment_id in SHARDED_EXPERIMENTS:
            for task in build_plan(experiment_id, days=7.0).shards:
                assert pickle.loads(pickle.dumps(task)).task_id == task.task_id


class TestCostModel:
    @pytest.fixture(autouse=True)
    def _isolated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "costs"))
        monkeypatch.delenv("REPRO_COSTS", raising=False)

    def test_ewma_observation(self):
        model = CostModel(days=7.0)
        model.observe("t", 4.0)
        assert model.cost_of("t") == 4.0
        model.observe("t", 8.0)
        assert model.cost_of("t") == pytest.approx(6.0)  # alpha = 0.5
        assert model.samples["t"] == 2

    def test_round_trip_through_cache(self):
        model = CostModel(days=7.0)
        model.observe("table1/occupied-1", 2.5)
        model.save()
        loaded = CostModel.load(7.0)
        assert loaded.cost_of("table1/occupied-1") == 2.5
        # Keyed per protocol length: other day counts stay cold.
        assert not CostModel.load(98.0).known()

    def test_costs_off_switch(self, monkeypatch):
        model = CostModel(days=7.0)
        model.observe("t", 1.0)
        monkeypatch.setenv("REPRO_COSTS", "off")
        assert not costs_enabled()
        model.save()
        monkeypatch.delenv("REPRO_COSTS")
        assert not CostModel.load(7.0).known()

    def test_corrupt_payload_degrades_to_empty(self):
        from repro.core.artifacts import default_cache

        default_cache().store(costs_key(7.0), ["not", "a", "cost", "table"])
        assert not CostModel.load(7.0).known()

    def test_table_sorted_most_expensive_first(self):
        model = CostModel(days=7.0)
        model.observe("cheap", 1.0)
        model.observe("dear", 9.0)
        model.observe("mid", 5.0)
        assert [row[0] for row in model.table()] == ["dear", "mid", "cheap"]


class TestScheduler:
    def _tasks(self, *ids):
        return [_task(i) for i in ids]

    def test_lpt_orders_by_descending_cost(self):
        tasks = self._tasks("a", "b", "c")
        costs = CostModel(days=7.0, ewma_s={"a": 1.0, "b": 9.0, "c": 5.0})
        assert [t.task_id for t in schedule_tasks(tasks, costs, "cost")] == [
            "b",
            "c",
            "a",
        ]

    def test_unknown_cost_tasks_lead_the_wave(self):
        tasks = self._tasks("a", "b", "c")
        costs = CostModel(days=7.0, ewma_s={"a": 1.0, "c": 5.0})
        assert [t.task_id for t in schedule_tasks(tasks, costs, "cost")] == [
            "b",
            "c",
            "a",
        ]

    def test_cold_start_falls_back_to_registry_order(self):
        tasks = self._tasks("a", "b", "c")
        assert schedule_tasks(tasks, CostModel(days=7.0), "cost") == tasks
        assert schedule_tasks(tasks, None, "cost") == tasks

    def test_registry_mode_ignores_costs(self):
        tasks = self._tasks("a", "b")
        costs = CostModel(days=7.0, ewma_s={"a": 1.0, "b": 9.0})
        assert schedule_tasks(tasks, costs, "registry") == tasks

    def test_bad_schedule_mode_rejected(self):
        with pytest.raises(ExperimentError, match="schedule"):
            run_experiments_detailed(["fig2"], days=7.0, schedule="fastest")


class TestShardedParity:
    """Sharded execution reduces to the exact monolithic render."""

    @pytest.fixture(autouse=True)
    def _warm(self, week_output):
        """Run against the session-cached 7-day trace."""

    @pytest.mark.parametrize("experiment_id", sorted(SHARDED_EXPERIMENTS))
    def test_reduce_matches_monolithic_render(self, experiment_id):
        days = 7.0
        ctx = get_context(days=days)
        seed = ctx.seed
        plan = build_plan(experiment_id, days=days, seed=seed)
        # Execute shards in *reverse* plan order (dependencies permitting)
        # to prove the reduce does not depend on completion order.
        shards = {}
        remaining = list(reversed(plan.shards))
        while remaining:
            progressed = False
            for task in list(remaining):
                if all(d in shards or d not in plan.task_ids for d in task.deps):
                    shards[task.task_id] = task.execute(days, seed)
                    remaining.remove(task)
                    progressed = True
            assert progressed, "plan dependencies are not satisfiable"
        monolithic = EXPERIMENTS[experiment_id].run(context=ctx).render()
        assert plan.reduce_fn(ctx, shards).render() == monolithic


class TestShardFailureIsolation:
    """One poisoned shard degrades one cell, never the experiment."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self, week_output, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_poisoned_cell_leaves_siblings_rendered(self, monkeypatch):
        import repro.experiments.table1 as table1_mod

        original = table1_mod.run_cell

        def _poisoned(days, seed, mode_name, order):
            if (mode_name, order) == ("occupied", 2):
                raise DataError("injected shard failure")
            return original(days, seed, mode_name, order)

        monkeypatch.setattr(table1_mod, "run_cell", _poisoned)
        report = run_experiments_detailed(["table1", "fig2"], days=7.0)

        (failure,) = report.failures
        assert failure.experiment_id == "table1"
        assert failure.task_id == "table1/occupied-2"
        assert failure.error_type == "DataError"
        assert "table1/occupied-2" in failure.describe()

        survived = dict(report.results)
        assert set(survived) == {"table1", "fig2"}
        degraded = survived["table1"]
        assert "FAILED" in degraded
        assert "cell occupied/order 2 failed" in degraded
        # Sibling cells still carry real measurements.
        assert "unoccupied" in degraded

    def test_degraded_render_is_not_cached(self, monkeypatch):
        import repro.experiments.table1 as table1_mod

        from repro.core.artifacts import default_cache
        from repro.experiments.runner import _render_key

        def _boom(days, seed, mode_name, order):
            raise DataError("injected shard failure")

        monkeypatch.setattr(table1_mod, "run_cell", _boom)
        report = run_experiments_detailed(["table1"], days=7.0)
        assert not report.ok
        assert not default_cache().contains(_render_key("table1", 7.0, get_context(days=7.0).seed))

    def test_all_shards_failed_drops_the_experiment(self, monkeypatch):
        import repro.experiments.table1 as table1_mod

        def _boom(days, seed, mode_name, order):
            raise DataError("injected shard failure")

        monkeypatch.setattr(table1_mod, "run_cell", _boom)
        report = run_experiments_detailed(["table1"], days=7.0)
        assert report.results == []
        assert len(report.failures) == 4  # one entry per cell


class TestScheduledRunsStayByteIdentical:
    """The byte-parity contract across schedules, jobs and cost tables."""

    @pytest.fixture(autouse=True)
    def _warm(self, week_output):
        """Run against the session-cached 7-day trace."""

    def test_cost_schedule_with_synthetic_costs_matches_registry(
        self, tmp_path, monkeypatch
    ):
        ids = ["table1", "fig2", "fig3"]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "registry"))
        registry = run_experiments_detailed(
            ids, days=7.0, jobs=1, schedule="registry"
        ).results

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cost"))
        # A deliberately adversarial cost table: make the scheduler run
        # everything in reverse registry order.
        model = CostModel(days=7.0)
        for rank, task_id in enumerate(
            ["table1/occupied-1", "table1/occupied-2", "table1/unoccupied-1",
             "table1/unoccupied-2", "fig2", "fig3"]
        ):
            model.observe(task_id, float(rank + 1))
        model.save()
        cost = run_experiments_detailed(
            ids, days=7.0, jobs=2, schedule="cost"
        ).results
        assert cost == registry

    def test_cold_run_populates_the_cost_model(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = run_experiments_detailed(["table1", "fig2"], days=7.0)
        assert report.ok
        model = CostModel.load(7.0)
        observed = set(model.ewma_s)
        assert CONTEXT_TASK_ID in observed
        assert "fig2" in observed
        assert {"table1/occupied-1", "table1/occupied-2"} <= observed
