"""Tests for the auditorium geometry, sensor layout and zone grid."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry import (
    Auditorium,
    Point,
    ZoneGrid,
    default_auditorium,
    default_sensor_layout,
)
from repro.geometry.auditorium import Diffuser
from repro.geometry.layout import (
    BACK_SENSOR_IDS,
    CEILING_SENSOR_IDS,
    FRONT_SENSOR_IDS,
    RELIABLE_GROUND_SENSOR_IDS,
    THERMOSTAT_IDS,
    UNRELIABLE_GROUND_SENSOR_IDS,
    analysis_sensor_ids,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0, 0).distance_to(Point(3, 4, 0)) == pytest.approx(5.0)
        assert Point(0, 0, 0).distance_to(Point(0, 0, 2)) == pytest.approx(2.0)

    def test_floor_distance_ignores_height(self):
        assert Point(0, 0, 0).floor_distance_to(Point(3, 4, 9)) == pytest.approx(5.0)


class TestAuditorium:
    def test_default_dimensions(self):
        aud = default_auditorium()
        assert aud.capacity == 90
        assert len(aud.seats) == 90
        assert aud.floor_area == pytest.approx(320.0)
        assert aud.volume == pytest.approx(1920.0)

    def test_two_diffusers_four_vavs(self):
        aud = default_auditorium()
        assert len(aud.diffusers) == 2
        vav_ids = sorted(v for d in aud.diffusers for v in d.vav_ids)
        assert vav_ids == [1, 2, 3, 4]

    def test_contains(self):
        aud = default_auditorium()
        assert aud.contains(Point(1, 1, 1))
        assert not aud.contains(Point(-0.1, 1, 1))
        assert not aud.contains(Point(1, 1, 99))

    def test_require_inside_raises(self):
        with pytest.raises(GeometryError):
            default_auditorium().require_inside(Point(999, 0, 0))

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            Auditorium(width=-1)

    def test_diffuser_outside_room_rejected(self):
        with pytest.raises(GeometryError):
            Auditorium(diffusers=(Diffuser(name="bad", y=99.0, vav_ids=(1,)),))

    def test_diffuser_weights_normalized(self):
        aud = default_auditorium()
        for y in (0.0, 5.0, 15.9):
            weights = aud.diffuser_weights(y)
            assert sum(weights) == pytest.approx(1.0)

    def test_diffuser_influence_decays(self):
        diffuser = Diffuser(name="d", y=1.0, vav_ids=(1,), reach=3.0)
        assert diffuser.influence_at(1.0) > diffuser.influence_at(5.0) > diffuser.influence_at(12.0)


class TestLayout:
    def test_id_partitions_are_disjoint_and_complete(self):
        groups = [
            set(RELIABLE_GROUND_SENSOR_IDS),
            set(UNRELIABLE_GROUND_SENSOR_IDS),
            set(CEILING_SENSOR_IDS),
            set(THERMOSTAT_IDS),
        ]
        union = set().union(*groups)
        assert sum(len(g) for g in groups) == len(union)
        # 39 wireless units + 2 thermostats.
        assert len(union) == 41

    def test_paper_analysis_set(self):
        assert len(RELIABLE_GROUND_SENSOR_IDS) == 25
        assert analysis_sensor_ids() == sorted(RELIABLE_GROUND_SENSOR_IDS + THERMOSTAT_IDS)
        assert analysis_sensor_ids(include_thermostats=False) == list(RELIABLE_GROUND_SENSOR_IDS)

    def test_front_back_partition(self):
        assert set(FRONT_SENSOR_IDS).isdisjoint(BACK_SENSOR_IDS)
        assert set(FRONT_SENSOR_IDS) | set(BACK_SENSOR_IDS) == set(RELIABLE_GROUND_SENSOR_IDS)

    def test_layout_positions_inside_room(self):
        aud = default_auditorium()
        layout = default_sensor_layout(aud)  # raises if any outside
        assert len(layout) == 41

    def test_front_sensors_in_front(self):
        layout = default_sensor_layout()
        for sid in FRONT_SENSOR_IDS:
            assert layout[sid].position.y < 6.0
        for sid in BACK_SENSOR_IDS:
            assert layout[sid].position.y > 8.0

    def test_near_ground_flags(self):
        layout = default_sensor_layout()
        for sid in RELIABLE_GROUND_SENSOR_IDS + UNRELIABLE_GROUND_SENSOR_IDS:
            assert layout[sid].near_ground
        for sid in CEILING_SENSOR_IDS:
            assert not layout[sid].near_ground

    def test_unreliable_units_have_faults(self):
        layout = default_sensor_layout()
        for sid in UNRELIABLE_GROUND_SENSOR_IDS:
            assert layout[sid].fault is not None
        for sid in RELIABLE_GROUND_SENSOR_IDS:
            assert layout[sid].fault is None

    def test_thermostats(self):
        layout = default_sensor_layout()
        for sid in THERMOSTAT_IDS:
            assert layout[sid].is_thermostat
            assert layout[sid].position.y < 4.0  # front walls


class TestZoneGrid:
    @pytest.fixture
    def grid(self):
        return ZoneGrid(default_auditorium(), nx=6, ny=5)

    def test_basic_shape(self, grid):
        assert grid.n_zones == 30
        assert grid.cell_width == pytest.approx(20.0 / 6)
        assert grid.cell_depth == pytest.approx(16.0 / 5)

    def test_index_roundtrip(self, grid):
        for zone in range(grid.n_zones):
            ix, iy = grid.coords_of(zone)
            assert grid.index_of(ix, iy) == zone

    def test_locate_matches_center(self, grid):
        for zone in range(grid.n_zones):
            assert grid.locate(grid.center_of(zone)) == zone

    def test_locate_room_edges(self, grid):
        aud = grid.auditorium
        assert grid.locate(Point(0, 0, 0)) == 0
        assert grid.locate(Point(aud.width, aud.depth, 0)) == grid.n_zones - 1

    def test_neighbors_symmetric_and_bounded(self, grid):
        for zone in range(grid.n_zones):
            neighbors = grid.neighbors(zone)
            assert 2 <= len(neighbors) <= 4
            for n in neighbors:
                assert zone in grid.neighbors(n)

    def test_adjacency_count(self, grid):
        # nx*(ny-1) vertical + (nx-1)*ny horizontal edges
        expected = 6 * 4 + 5 * 5
        assert len(list(grid.adjacency())) == expected

    def test_boundary_zones(self, grid):
        boundary = grid.boundary_zones()
        assert len(boundary) == 2 * 6 + 2 * 5 - 4

    def test_interpolation_weights_sum_to_one(self, grid):
        for point in (Point(0.1, 0.1, 1), Point(19.9, 15.9, 1), Point(10, 8, 1), Point(19.7, 2.4, 1.4)):
            weights = grid.interpolation_weights(point)
            assert sum(w for _, w in weights) == pytest.approx(1.0)
            assert all(w > 0 for _, w in weights)

    def test_interpolate_constant_field(self, grid):
        field = np.full(grid.n_zones, 21.5)
        for point in (Point(0.05, 0.05, 1), Point(13, 9, 1), Point(19.95, 15.95, 1)):
            assert grid.interpolate(field, point) == pytest.approx(21.5)

    def test_interpolate_linear_field_between_centers(self, grid):
        centers = grid.centers()
        field = 0.1 * centers[:, 0] + 0.2 * centers[:, 1]
        point = Point(10.0, 8.0, 1.0)
        expected = 0.1 * point.x + 0.2 * point.y
        assert grid.interpolate(field, point) == pytest.approx(expected, abs=1e-9)

    def test_interpolate_shape_mismatch(self, grid):
        with pytest.raises(GeometryError):
            grid.interpolate(np.zeros(5), Point(1, 1, 1))

    def test_seat_counts_total(self, grid):
        assert grid.seat_counts().sum() == 90

    def test_diffuser_fractions_rows_sum_to_one(self, grid):
        fractions = grid.diffuser_flow_fractions()
        assert fractions.shape == (2, grid.n_zones)
        np.testing.assert_allclose(fractions.sum(axis=1), 1.0)

    def test_front_diffuser_favours_front_rows(self, grid):
        fractions = grid.diffuser_flow_fractions()
        front_row = fractions[0, :6].sum()
        back_row = fractions[0, -6:].sum()
        assert front_row > 3 * back_row

    def test_invalid_grid_rejected(self):
        with pytest.raises(GeometryError):
            ZoneGrid(default_auditorium(), nx=0, ny=5)
