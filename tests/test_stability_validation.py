"""Tests for clustering stability and the physics validation utilities."""

import numpy as np
import pytest

from repro.cluster.stability import adjusted_rand_index, bootstrap_stability
from repro.errors import ClusteringError, SimulationError
from repro.geometry import ZoneGrid, default_auditorium
from repro.simulation.rc_network import RCNetwork
from repro.simulation.validation import energy_audit, steady_state, time_constants


class TestAdjustedRandIndex:
    def test_identical_partitions(self):
        assert adjusted_rand_index([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_orthogonal_partitions_near_zero(self):
        gen = np.random.default_rng(0)
        a = gen.integers(0, 3, size=600)
        b = gen.integers(0, 3, size=600)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_partial_agreement_between(self):
        a = [0, 0, 0, 1, 1, 1]
        b = [0, 0, 1, 1, 1, 1]
        score = adjusted_rand_index(a, b)
        assert 0.0 < score < 1.0

    def test_validation(self):
        with pytest.raises(ClusteringError):
            adjusted_rand_index([0, 1], [0])
        with pytest.raises(ClusteringError):
            adjusted_rand_index([0], [0])


class TestBootstrapStability:
    def test_correlation_more_stable_than_euclidean(self, month_dataset):
        """The paper's consistency claim, quantified."""
        from repro.geometry.layout import THERMOSTAT_IDS

        wireless = month_dataset.select_sensors(
            [s for s in month_dataset.sensor_ids if s not in THERMOSTAT_IDS]
        )
        correlation = bootstrap_stability(wireless, "correlation", k=2, n_bootstrap=5, seed=1)
        euclidean = bootstrap_stability(wireless, "euclidean", k=2, n_bootstrap=5, seed=1)
        assert correlation.mean_ari > 0.8
        assert correlation.mean_ari >= euclidean.mean_ari

    def test_parameters_validated(self, month_dataset):
        with pytest.raises(ClusteringError):
            bootstrap_stability(month_dataset, "correlation", day_fraction=0.0)
        with pytest.raises(ClusteringError):
            bootstrap_stability(month_dataset, "correlation", n_bootstrap=1)


@pytest.fixture
def network():
    auditorium = default_auditorium()
    return RCNetwork(auditorium, ZoneGrid(auditorium, nx=4, ny=4))


class TestSteadyState:
    def test_unforced_equilibrium_at_core_temp(self, network):
        n = network.n_zones
        zones, masses = steady_state(
            network,
            zone_mass_flow_kgs=np.zeros(n),
            zone_supply_temp_c=np.full(n, 20.0),
            zone_heat_w=np.zeros(n),
            ambient_temp_c=network.config.ground_temp,
        )
        np.testing.assert_allclose(zones, network.config.ground_temp, atol=1e-8)
        np.testing.assert_allclose(masses, network.config.ground_temp, atol=1e-8)

    def test_heat_raises_equilibrium(self, network):
        n = network.n_zones
        heat = np.full(n, 200.0)
        zones, _ = steady_state(
            network,
            zone_mass_flow_kgs=np.zeros(n),
            zone_supply_temp_c=np.full(n, 20.0),
            zone_heat_w=heat,
            ambient_temp_c=network.config.ground_temp,
        )
        assert zones.min() > network.config.ground_temp + 0.5

    def test_matches_long_simulation(self, network):
        """The linear solve agrees with integrating to equilibrium."""
        from repro.simulation.integrator import euler_step, substep_count

        n = network.n_zones
        flow = np.zeros(n)
        supply = np.full(n, 20.0)
        heat = np.full(n, 100.0)
        ambient = 10.0
        target_z, target_m = steady_state(network, flow, supply, heat, ambient)
        z, m = network.initial_state(20.0)
        substeps = substep_count(600.0, network.max_stable_dt())

        def derivative(zz, mm):
            return network.derivatives(zz, mm, flow, supply, heat, ambient)

        for _ in range(5000):
            z, m = euler_step(derivative, z, m, dt=600.0, substeps=substeps)
        np.testing.assert_allclose(z, target_z, atol=0.02)
        np.testing.assert_allclose(m, target_m, atol=0.02)


class TestTimeConstants:
    def test_two_time_scale_structure(self, network):
        taus = time_constants(network)
        assert taus.min() < 600.0  # fast air modes (minutes)
        assert taus.max() > 3600.0  # slow envelope modes (hours)

    def test_supply_flow_speeds_up_air(self, network):
        slow = time_constants(network).min()
        fast = time_constants(network, zone_mass_flow_kgs=np.full(network.n_zones, 0.2)).min()
        assert fast < slow


class TestEnergyAudit:
    def test_integrator_energy_error_small(self, week_output):
        grid = week_output.simulation.grid
        network = RCNetwork(week_output.simulation.auditorium, grid)
        audit = energy_audit(week_output.simulation, network)
        assert audit.relative_residual < 0.05

    def test_short_run_rejected(self, week_output):
        import dataclasses

        short = dataclasses.replace(
            week_output.simulation,
            axis=week_output.simulation.axis.subaxis(0, 1),
            zone_temps=week_output.simulation.zone_temps[:1],
            mass_temps=week_output.simulation.mass_temps[:1],
            vav_flows=week_output.simulation.vav_flows[:1],
            vav_temps=week_output.simulation.vav_temps[:1],
            occupancy=week_output.simulation.occupancy[:1],
            zone_occupancy=week_output.simulation.zone_occupancy[:1],
            lighting=week_output.simulation.lighting[:1],
            ambient=week_output.simulation.ambient[:1],
            co2=week_output.simulation.co2[:1],
            humidity_ratio=week_output.simulation.humidity_ratio[:1],
            thermostat_readings=week_output.simulation.thermostat_readings[:1],
            thermostat_true=week_output.simulation.thermostat_true[:1],
        )
        network = RCNetwork(week_output.simulation.auditorium, week_output.simulation.grid)
        with pytest.raises(SimulationError):
            energy_audit(short, network)
