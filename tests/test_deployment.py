"""Tests for the full deployment observing a simulation (and the HVAC logger)."""

import numpy as np
import pytest

from repro.geometry.layout import (
    RELIABLE_GROUND_SENSOR_IDS,
    THERMOSTAT_IDS,
    UNRELIABLE_GROUND_SENSOR_IDS,
)
from repro.sensing.hvac_logger import HVACLogger, HVACLoggerConfig


class TestHVACLogger:
    def test_log_intervals_in_range(self):
        logger = HVACLogger(HVACLoggerConfig(), seed=1)
        times = logger.log_times(5 * 86400.0)
        gaps = np.diff(times)
        assert gaps.min() >= 600.0 - 1e-9
        assert gaps.max() <= 1800.0 + 1e-9

    def test_streams_cover_all_channels(self, week_output):
        streams = HVACLogger(seed=2).observe(week_output.simulation)
        expected = {f"vav{i}_flow" for i in range(1, 5)}
        expected |= {f"vav{i}_temp" for i in range(1, 5)}
        expected |= {"ambient", "co2", "lighting"}
        assert set(streams) == expected

    def test_lighting_records_state_changes(self, week_output):
        streams = HVACLogger(seed=2).observe(week_output.simulation)
        lighting = streams["lighting"]
        assert set(np.unique(lighting.values)) <= {0.0, 1.0}
        # Consecutive records differ (change-driven), except the initial one.
        assert (np.diff(lighting.values) != 0).all()


class TestDeployment:
    def test_all_units_produce_streams(self, week_output):
        raw = week_output.raw
        assert len(raw.temperature_streams) == 41

    def test_report_on_change_compresses(self, week_output):
        """A wireless sensor reports far fewer samples than the 1-minute
        simulation resolution."""
        raw = week_output.raw
        n_steps = week_output.simulation.n_steps
        for sid in RELIABLE_GROUND_SENSOR_IDS[:5]:
            assert 0 < len(raw.stream_of(sid)) < 0.6 * n_steps

    def test_dropout_unit_reports_sparsely(self, week_output):
        raw = week_output.raw
        dropout_id = 36  # configured with the dropout fault in the layout
        healthy = np.median([len(raw.stream_of(s)) for s in RELIABLE_GROUND_SENSOR_IDS])
        assert len(raw.stream_of(dropout_id)) < 0.15 * healthy

    def test_thermostats_log_periodically(self, week_output):
        raw = week_output.raw
        for sid in THERMOSTAT_IDS:
            stream = raw.stream_of(sid)
            gaps = np.diff(stream.times)
            # Wired 5-minute cadence, except across server outages.
            assert np.median(gaps) == pytest.approx(300.0)

    def test_stream_values_are_plausible_temperatures(self, week_output):
        raw = week_output.raw
        for sid in RELIABLE_GROUND_SENSOR_IDS:
            values = raw.stream_of(sid).values
            assert values.min() > 12.0 and values.max() < 30.0

    def test_outages_kill_wireless_reports(self, week_output):
        raw = week_output.raw
        outages = raw.outages
        windows = outages.station_windows + outages.server_windows
        if not windows:
            pytest.skip("this seed drew no outage in one week")
        lo, hi = windows[0]
        for sid in RELIABLE_GROUND_SENSOR_IDS[:3]:
            times = raw.stream_of(sid).times
            assert not ((times >= lo) & (times < hi)).any()

    def test_occupancy_stream_exists(self, week_output):
        assert week_output.raw.occupancy_stream is not None
        assert len(week_output.raw.occupancy_stream) > 100
