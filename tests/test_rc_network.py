"""Tests for the zonal RC thermal network and its integrator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.geometry import ZoneGrid, default_auditorium
from repro.simulation.integrator import euler_step, substep_count
from repro.simulation.rc_network import AIR_CP, AIR_DENSITY, RCNetwork, RCNetworkConfig


@pytest.fixture
def network():
    auditorium = default_auditorium()
    grid = ZoneGrid(auditorium, nx=6, ny=5)
    return RCNetwork(auditorium, grid)


def no_hvac(network):
    """Zero-flow supply vectors."""
    flow = np.zeros(network.n_zones)
    temp = np.full(network.n_zones, 20.0)
    return flow, temp


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RCNetworkConfig(zone_capacitance=0.0)
        with pytest.raises(ConfigurationError):
            RCNetworkConfig(occupant_heat=-1.0)

    def test_grid_auditorium_consistency(self):
        a1, a2 = default_auditorium(), default_auditorium()
        grid = ZoneGrid(a1, nx=3, ny=3)
        with pytest.raises(ConfigurationError):
            RCNetwork(a2, grid)


class TestPhysics:
    def test_equilibrium_is_stationary(self, network):
        """With everything at the core temperature and no forcing, the
        state does not move."""
        config = network.config
        t = np.full(network.n_zones, config.ground_temp)
        m = np.full(network.n_zones, config.ground_temp)
        flow, supply = no_hvac(network)
        dz, dm = network.derivatives(t, m, flow, supply, np.zeros(network.n_zones), config.ground_temp)
        np.testing.assert_allclose(dz, 0.0, atol=1e-12)
        np.testing.assert_allclose(dm, 0.0, atol=1e-12)

    def test_energy_conservation_isolated(self):
        """With no exterior couplings, total heat content is conserved
        by the continuous dynamics."""
        auditorium = default_auditorium()
        grid = ZoneGrid(auditorium, nx=4, ny=4)
        config = RCNetworkConfig(
            exterior_conductance=0.0, ground_conductance=0.0, infiltration_conductance=0.0
        )
        network = RCNetwork(auditorium, grid, config)
        gen = np.random.default_rng(0)
        t = 20.0 + gen.random(network.n_zones)
        m = 20.0 + gen.random(network.n_zones)
        flow = np.zeros(network.n_zones)
        supply = np.full(network.n_zones, 20.0)
        dz, dm = network.derivatives(t, m, flow, supply, np.zeros(network.n_zones), 0.0)
        energy_rate = config.zone_capacitance * dz.sum() + config.mass_capacitance * dm.sum()
        assert energy_rate == pytest.approx(0.0, abs=1e-8)

    def test_heat_input_raises_temperature(self, network):
        t, m = network.initial_state(20.0)
        flow, supply = no_hvac(network)
        heat = np.zeros(network.n_zones)
        heat[10] = 1000.0
        dz, _ = network.derivatives(t, m, flow, supply, heat, 20.0)
        assert dz[10] > 0
        assert dz[(np.arange(network.n_zones) != 10)].max() <= 1e-15

    def test_cold_supply_cools(self, network):
        t, m = network.initial_state(22.0)
        flow = np.zeros(network.n_zones)
        flow[0] = 0.5 * AIR_DENSITY
        supply = np.full(network.n_zones, 13.0)
        dz, _ = network.derivatives(t, m, flow, supply, np.zeros(network.n_zones), 20.0)
        assert dz[0] < 0

    def test_mixing_homogenizes(self, network):
        t, m = network.initial_state(20.0)
        t[0] = 25.0
        flow, supply = no_hvac(network)
        dz, _ = network.derivatives(t, m, flow, supply, np.zeros(network.n_zones), 20.0)
        assert dz[0] < 0
        for neighbor in network.grid.neighbors(0):
            assert dz[neighbor] > 0

    def test_supply_to_zones_mass_conservation(self, network):
        flows = np.array([1.0, 0.5])
        temps = np.array([13.0, 15.0])
        zone_flow, zone_temp = network.supply_to_zones(flows, temps)
        assert zone_flow.sum() == pytest.approx(AIR_DENSITY * 1.5)
        assert zone_temp.min() >= 13.0 - 1e-9
        assert zone_temp.max() <= 15.0 + 1e-9

    def test_supply_shape_checked(self, network):
        with pytest.raises(SimulationError):
            network.supply_to_zones(np.array([1.0]), np.array([13.0]))

    def test_occupant_heat_shape_checked(self, network):
        with pytest.raises(SimulationError):
            network.occupant_zone_heat(np.zeros(3))

    def test_lighting_heat_spread(self, network):
        heat = network.lighting_zone_heat(1.0, 2000.0)
        assert heat.sum() == pytest.approx(2000.0)
        assert np.allclose(heat, heat[0])


class TestIntegrator:
    def test_substep_count(self):
        assert substep_count(60.0, 1000.0) == 1
        assert substep_count(60.0, 10.0) == 8  # 60 / (0.8*10) = 7.5 -> 8
        with pytest.raises(SimulationError):
            substep_count(0.0, 10.0)

    def test_max_stable_dt_positive(self, network):
        assert network.max_stable_dt() > 10.0

    def test_euler_step_converges_to_equilibrium(self, network):
        config = network.config
        t, m = network.initial_state(25.0)
        flow, supply = no_hvac(network)
        heat = np.zeros(network.n_zones)

        def derivative(z, mm):
            return network.derivatives(z, mm, flow, supply, heat, config.ground_temp)

        substeps = substep_count(300.0, network.max_stable_dt())
        for _ in range(2000):
            t, m = euler_step(derivative, t, m, dt=300.0, substeps=substeps)
        np.testing.assert_allclose(t, config.ground_temp, atol=0.1)

    def test_euler_step_detects_divergence(self, network):
        t, m = network.initial_state(20.0)

        def exploding(z, mm):
            with np.errstate(over="ignore"):
                return z * 1e308, mm  # overflows to inf within one step

        with pytest.raises(SimulationError):
            euler_step(exploding, t, m, dt=60.0, substeps=1)

    def test_euler_step_does_not_mutate_inputs(self, network):
        t, m = network.initial_state(20.0)
        t0, m0 = t.copy(), m.copy()
        flow, supply = no_hvac(network)

        def derivative(z, mm):
            return network.derivatives(z, mm, flow, supply, np.zeros(network.n_zones), 20.0)

        euler_step(derivative, t, m, dt=60.0, substeps=2)
        np.testing.assert_array_equal(t, t0)
        np.testing.assert_array_equal(m, m0)
