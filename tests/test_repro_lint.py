"""Tests for the repro_lint AST lint pack (tools/repro_lint).

Every rule gets at least one positive fixture (a snippet that must be
flagged) and one negative fixture (a snippet that must pass), plus
coverage of the suppression comments, path/context handling, and the
CLI's JSON output and exit codes.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro_lint import RULES, LintRunner
from repro_lint.engine import FileContext, iter_python_files

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Path (relative to tmp_path) that makes the snippet a *library* module.
LIB = "src/repro/mod.py"
#: Path that makes the snippet the library's CLI module (RL007-exempt).
CLI = "src/repro/cli.py"
#: Path outside the library (scripts, tests, benchmarks).
SCRIPT = "scripts/helper.py"


def lint_snippet(tmp_path, source, relpath=LIB, select=None):
    """Lint a dedented snippet written at ``relpath`` under ``tmp_path``."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    violations, error = LintRunner(select=select).lint_file(path)
    assert error is None, error
    return violations


def codes(violations):
    return [v.code for v in violations]


# ---------------------------------------------------------------------------
# Registry sanity
# ---------------------------------------------------------------------------


def test_registry_has_all_eight_rules():
    got = [rule.code for rule in RULES]
    assert got == sorted(got)
    assert got == [f"RL00{i}" for i in range(1, 9)]


def test_rules_have_summaries():
    for rule in RULES:
        assert rule.summary, rule.code


# ---------------------------------------------------------------------------
# RL001 — global-state RNG
# ---------------------------------------------------------------------------


def test_rl001_flags_np_random_attribute(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def draw():
            return np.random.rand(3)
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL001"]


def test_rl001_flags_stdlib_random_module(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import random

        def pick(items):
            return random.choice(items)
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL001"]


def test_rl001_flags_from_imports_of_draw_functions(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        from numpy.random import rand
        from random import shuffle
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL001", "RL001"]


def test_rl001_allows_generator_api(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np
        from numpy.random import Generator, default_rng
        from random import Random

        def draw(gen: np.random.Generator):
            local = Random(7)
            return default_rng(0).normal(), gen.normal(), local.random()
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# RL002 — mutable default arguments
# ---------------------------------------------------------------------------


def test_rl002_flags_literal_and_call_defaults(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def f(a, items=[], table={}, tags=set(), buf=bytearray()):
            return a
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL002"] * 4


def test_rl002_flags_keyword_only_and_lambda_defaults(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def f(*, acc=[]):
            return acc

        g = lambda xs=[]: xs
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL002", "RL002"]


def test_rl002_allows_immutable_defaults(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def f(a=None, b=(), c=0, d="x", e=frozenset()):
            return a, b, c, d, e
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# RL003 — unit suffixes on physical-quantity parameters
# ---------------------------------------------------------------------------


def test_rl003_flags_bare_quantity_names(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def step(supply_temp, flow, timeout):
            return supply_temp + flow + timeout
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL003"] * 3
    assert "supply_temp" in out[0].message


def test_rl003_accepts_unit_suffixes(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def step(supply_temp_c, flow_m3s, mass_flow_kgs, timeout_s, power_kw, duration_h):
            return supply_temp_c
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


def test_rl003_skips_self_and_non_quantity_names(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        class C:
            def method(self, index, label, tempo):
                return index
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# RL004 — bare / overbroad except
# ---------------------------------------------------------------------------


def test_rl004_flags_bare_and_swallowed_except(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def f():
            try:
                risky()
            except:
                pass
            try:
                risky()
            except BaseException:
                raise
            try:
                risky()
            except Exception:
                pass
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL004"] * 3


def test_rl004_allows_narrow_and_handled_except(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def f(log):
            try:
                risky()
            except ValueError:
                pass
            try:
                risky()
            except Exception as exc:
                log.warning("failed: %s", exc)
                raise
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# RL005 — __all__ must match public definitions (library modules only)
# ---------------------------------------------------------------------------


def test_rl005_flags_missing_public_name(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        __all__ = ["visible"]

        def visible():
            "doc"

        def also_public():
            "doc"
        """,
    )
    assert "RL005" in codes(out)
    assert any("also_public" in v.message for v in out)


def test_rl005_flags_missing_dunder_all(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def visible():
            "doc"
        """,
    )
    assert "RL005" in codes(out)


def test_rl005_flags_unbound_export(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        __all__ = ["ghost"]
        """,
    )
    assert "RL005" in codes(out)


def test_rl005_accepts_matching_dunder_all(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        from math import tau

        __all__ = ["TAU", "visible"]

        TAU = tau

        def visible():
            "doc"

        def _private():
            pass
        """,
    )
    assert codes(out) == []


def test_rl005_not_applied_outside_library(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def visible():
            "doc"
        """,
        relpath=SCRIPT,
    )
    assert "RL005" not in codes(out)


# ---------------------------------------------------------------------------
# RL006 — public docstrings (library modules only)
# ---------------------------------------------------------------------------


def test_rl006_flags_undocumented_public_def(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        __all__ = ["visible", "Thing"]

        def visible():
            return 1

        class Thing:
            pass
        """,
    )
    assert codes(out) == ["RL006", "RL006"]


def test_rl006_allows_documented_and_private(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        __all__ = ["visible"]

        def visible():
            "documented"

        def _private():
            return 1
        """,
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# RL007 — no print() in the library (CLI exempt)
# ---------------------------------------------------------------------------


def test_rl007_flags_print_in_library(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        __all__ = ["noisy"]

        def noisy():
            "doc"
            print("debugging")
        """,
    )
    assert codes(out) == ["RL007"]


def test_rl007_exempts_cli_and_scripts(tmp_path):
    snippet = """
        __all__ = ["main"]

        def main():
            "doc"
            print("report")
    """
    assert codes(lint_snippet(tmp_path, snippet, relpath=CLI)) == []
    assert "RL007" not in codes(lint_snippet(tmp_path, snippet, relpath=SCRIPT))


# ---------------------------------------------------------------------------
# RL008 — pytest skip markers need a reason
# ---------------------------------------------------------------------------


def test_rl008_flags_reasonless_skips(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import pytest

        @pytest.mark.skip
        def test_a():
            pass

        @pytest.mark.skip()
        def test_b():
            pass

        @pytest.mark.skipif(True)
        def test_c():
            pass
        """,
        relpath="tests/test_sample.py",
    )
    assert codes(out) == ["RL008"] * 3


def test_rl008_accepts_skips_with_reason(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import pytest

        @pytest.mark.skip(reason="not implemented on this branch")
        def test_a():
            pass

        @pytest.mark.skipif(True, reason="needs hardware")
        def test_b():
            pass

        @pytest.mark.skip("positional reason")
        def test_c():
            pass
        """,
        relpath="tests/test_sample.py",
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------


def test_line_suppression_silences_one_code(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def draw():
            return np.random.rand(3)  # repro-lint: disable=RL001
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


def test_line_suppression_is_code_specific(tmp_path):
    # Suppressing RL002 does not silence RL001 — and since nothing on
    # the line fires RL002, the waiver itself is flagged as dead (RL010).
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def draw():
            return np.random.rand(3)  # repro-lint: disable=RL002
        """,
        relpath=SCRIPT,
    )
    assert sorted(codes(out)) == ["RL001", "RL010"]
    (rl010,) = [v for v in out if v.code == "RL010"]
    assert "RL002" in rl010.message


def test_multi_code_line_suppression(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def draw(acc=[]):  # repro-lint: disable=RL002
            return np.random.rand(3)  # repro-lint: disable=RL001,RL002
        """,
        relpath=SCRIPT,
    )
    # RL001 and the def-line RL002 are suppressed and used; the RL002
    # half of the multi-code comment never fires, so it is dead.
    assert codes(out) == ["RL010"]
    assert "RL002" in out[0].message


def test_rl009_unknown_suppressed_code(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def draw():
            return np.random.rand(3)  # repro-lint: disable=RL001,RL999
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL009"]
    assert "RL999" in out[0].message


def test_rl010_dead_file_level_suppression(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        # repro-lint: disable-file=RL007
        X = 1
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == ["RL010"]
    assert "RL007" in out[0].message


def test_analysis_code_waivers_not_judged_by_lint_run(tmp_path):
    # RL401 is an analyzer code: known (no RL009) but not active in a
    # per-file lint run, so its waiver is never reported as unused.
    out = lint_snippet(
        tmp_path,
        """
        def f():  # repro-lint: disable=RL401
            return 1
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


def test_suppressions_inside_string_literals_are_inert(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        import numpy as np

        NOTE = "how to waive: # repro-lint: disable=RL001"

        def draw():
            return np.random.rand(3)
        """,
        relpath=SCRIPT,
    )
    # The string is not a comment: RL001 still fires and no RL010
    # complains about an unused waiver.
    assert codes(out) == ["RL001"]


def test_check_suppressions_opt_out(tmp_path):
    path = tmp_path / SCRIPT
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        textwrap.dedent(
            """
            X = 1  # repro-lint: disable=RL002
            """
        )
    )
    violations, error = LintRunner(check_suppressions=False).lint_file(path)
    assert error is None
    assert codes(violations) == []


def test_file_suppression(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        # repro-lint: disable-file=RL001,RL002
        import numpy as np

        def draw(acc=[]):
            return np.random.rand(3)
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


def test_file_suppression_all(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        # repro-lint: disable-file=ALL
        import numpy as np

        def draw(acc=[], supply_temp=0.0):
            print(acc)
            return np.random.rand(3)
        """,
        relpath=SCRIPT,
    )
    assert codes(out) == []


# ---------------------------------------------------------------------------
# Engine / runner behaviour
# ---------------------------------------------------------------------------


def test_select_and_ignore_filter_rules(tmp_path):
    snippet = """
        import numpy as np

        def draw(acc=[]):
            return np.random.rand(3)
    """
    only_rng = lint_snippet(tmp_path, snippet, relpath=SCRIPT, select={"RL001"})
    assert codes(only_rng) == ["RL001"]

    path = tmp_path / SCRIPT
    violations, error = LintRunner(ignore={"RL001"}).lint_file(path)
    assert error is None
    assert codes(violations) == ["RL002"]


def test_syntax_error_reported_not_raised(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def oops(:\n")
    violations, error = LintRunner().lint_file(path)
    assert violations == []
    assert error is not None and "broken.py" in error


def test_iter_python_files_skips_pycache(tmp_path):
    (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
    (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__" / "a.cpython-311.py").write_text("x = 1\n")
    found = list(iter_python_files([tmp_path]))
    assert [p.name for p in found] == ["a.py"]


def test_module_name_and_context_detection(tmp_path):
    lib = tmp_path / "src" / "repro" / "cluster" / "spectral.py"
    lib.parent.mkdir(parents=True)
    lib.write_text("x = 1\n")
    ctx = FileContext(lib, lib.read_text())
    assert ctx.module_name == "repro.cluster.spectral"
    assert ctx.is_library and not ctx.is_cli

    cli = tmp_path / "src" / "repro" / "cli.py"
    cli.write_text("x = 1\n")
    assert FileContext(cli, cli.read_text()).is_cli

    test = tmp_path / "tests" / "test_x.py"
    test.parent.mkdir(parents=True)
    test.write_text("x = 1\n")
    tctx = FileContext(test, test.read_text())
    assert tctx.is_test and not tctx.is_library


def test_violation_formatting(tmp_path):
    out = lint_snippet(
        tmp_path,
        """
        def f(acc=[]):
            return acc
        """,
        relpath=SCRIPT,
    )
    (violation,) = out
    human = violation.format_human()
    assert human.endswith(f"RL002 {violation.message}")
    record = violation.as_dict()
    assert record["code"] == "RL002" and record["line"] == violation.line


# ---------------------------------------------------------------------------
# CLI: exit codes and JSON output
# ---------------------------------------------------------------------------


def run_cli(*args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro_lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "tools"), "PATH": "/usr/bin:/bin"},
    )


def test_cli_clean_tree_exits_zero(tmp_path):
    (tmp_path / "ok.py").write_text("X = 1\n")
    proc = run_cli(str(tmp_path), cwd=REPO_ROOT)
    assert proc.returncode == 0
    assert "clean" in proc.stdout


def test_cli_violations_exit_one_with_json(tmp_path):
    (tmp_path / "bad.py").write_text("def f(acc=[]):\n    return acc\n")
    proc = run_cli(str(tmp_path), "--format", "json", cwd=REPO_ROOT)
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["count"] == 1
    assert payload["violations"][0]["code"] == "RL002"


def test_cli_missing_path_exits_two(tmp_path):
    proc = run_cli(str(tmp_path / "nope"), cwd=REPO_ROOT)
    assert proc.returncode == 2


def test_repo_tree_is_lint_clean():
    proc = run_cli("src", "tests", "benchmarks", cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
