"""Tests for occupied/unoccupied mode handling."""

from datetime import datetime

import numpy as np
import pytest

from repro.data.modes import (
    Mode,
    OCCUPIED,
    UNOCCUPIED,
    daily_windows,
    mode_mask,
    split_by_day,
)
from repro.data.timeseries import TimeAxis
from repro.errors import DataError


class TestMode:
    def test_occupied_window(self):
        assert OCCUPIED.contains_hour(6.0)
        assert OCCUPIED.contains_hour(20.99)
        assert not OCCUPIED.contains_hour(21.0)
        assert not OCCUPIED.contains_hour(5.99)
        assert OCCUPIED.duration_hours == pytest.approx(15.0)

    def test_unoccupied_wraps_midnight(self):
        assert UNOCCUPIED.wraps_midnight
        assert UNOCCUPIED.contains_hour(23.0)
        assert UNOCCUPIED.contains_hour(0.0)
        assert UNOCCUPIED.contains_hour(5.99)
        assert not UNOCCUPIED.contains_hour(6.0)
        assert UNOCCUPIED.duration_hours == pytest.approx(9.0)

    def test_invalid_hours(self):
        with pytest.raises(DataError):
            Mode(name="bad", start_hour=-1.0, end_hour=5.0)

    def test_modes_partition_the_day(self):
        for hour in np.arange(0, 24, 0.25):
            assert OCCUPIED.contains_hour(hour) != UNOCCUPIED.contains_hour(hour)


class TestModeMask:
    def test_matches_contains_hour(self):
        axis = TimeAxis(epoch=datetime(2013, 1, 31), period=3600.0, count=48)
        mask = mode_mask(axis, OCCUPIED)
        hours = axis.hours_of_day()
        for i in range(48):
            assert mask[i] == OCCUPIED.contains_hour(hours[i])


class TestSplitByDay:
    def test_occupied_one_segment_per_day(self):
        axis = TimeAxis(epoch=datetime(2013, 1, 31), period=900.0, count=96 * 3)
        segments = split_by_day(axis, OCCUPIED)
        assert len(segments) == 3
        for segment in segments:
            hours = axis.hours_of_day()[segment.indices()]
            assert hours.min() >= 6.0
            assert hours.max() < 21.0
            # 15 h at 15-min ticks.
            assert len(segment) == 60

    def test_unoccupied_attributed_to_start_day(self):
        axis = TimeAxis(epoch=datetime(2013, 1, 31), period=900.0, count=96 * 2)
        windows = daily_windows(axis, UNOCCUPIED)
        # Day 0's unoccupied window runs 21:00 Jan 31 -> 06:00 Feb 1.
        assert 0 in windows
        start, stop = windows[0]
        assert axis.datetime_at(start).hour == 21
        assert axis.datetime_at(stop - 1).hour == 5

    def test_partial_leading_window(self):
        # Axis starts at 03:00: the first ticks belong to the *previous*
        # day's unoccupied window, clipped.
        axis = TimeAxis(epoch=datetime(2013, 1, 31, 3, 0), period=900.0, count=96)
        windows = daily_windows(axis, UNOCCUPIED)
        assert -1 in windows
        start, stop = windows[-1]
        assert start == 0

    def test_empty_axis(self):
        axis = TimeAxis(epoch=datetime(2013, 1, 31), period=900.0, count=0)
        assert split_by_day(axis, OCCUPIED) == []
