"""Regression tests for the defects the whole-program analyzers surfaced.

Each test pins one concrete fix made in response to an RL1xx–RL4xx
finding, so the behaviour cannot silently regress even if the analyzer
or its baseline changes:

* RL202 — ``identify_cached`` keyed only ``axis.period``, so two traces
  with identical arrays but shifted epochs (different hour-of-day, hence
  different mode masks) aliased to one cache slot.
* RL401 — the model/RLS seams now fail loudly through
  :mod:`repro.contracts` instead of emitting non-finite arrays.
* RL303 — ``single_linkage`` scanned a ``set`` in hash order, so
  distance ties were broken nondeterministically.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.baselines import single_linkage
from repro.data.dataset import AuditoriumDataset, InputChannels
from repro.data.modes import OCCUPIED
from repro.data.timeseries import TimeAxis
from repro.errors import ContractError
from repro.streaming.rls import RecursiveLeastSquares
from repro.sysid.identify import IdentificationOptions, identify, identify_cached
from repro.sysid.metrics import empirical_cdf, per_sensor_rms
from repro.sysid.models import FirstOrderModel, SecondOrderModel

EPOCH_MIDNIGHT = datetime(2013, 3, 4, 0, 0, 0)


def _dataset(epoch: datetime, seed: int = 7) -> AuditoriumDataset:
    """Two days of 15-minute ticks with rich (seeded) dynamics."""
    channels = InputChannels()
    count = 2 * 96
    rng = np.random.default_rng(seed)
    temps = 20.0 + np.cumsum(rng.standard_normal((count, 3)) * 0.1, axis=0)
    inputs = np.abs(rng.standard_normal((count, channels.n_channels)))
    axis = TimeAxis(epoch=epoch, period=900.0, count=count)
    return AuditoriumDataset(
        axis=axis,
        sensor_ids=(1, 2, 3),
        temperatures=temps,
        inputs=inputs,
        channels=channels,
    )


class TestEpochCacheKey:
    """RL202: the identified-model cache key must cover the whole axis."""

    def test_shifted_epoch_is_not_served_from_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        options = IdentificationOptions(order=1)
        # Identical arrays and period; only the epoch differs.  A 12 h
        # shift moves different rows into the occupied window, so the
        # mode-restricted training sets — and the fits — differ.
        ds_midnight = _dataset(EPOCH_MIDNIGHT)
        ds_noon = _dataset(EPOCH_MIDNIGHT + timedelta(hours=12))

        model_midnight = identify_cached(ds_midnight, options=options, mode=OCCUPIED)
        model_noon = identify_cached(ds_noon, options=options, mode=OCCUPIED)

        # The buggy key (period only) returned model_midnight both times.
        assert not np.allclose(model_midnight.A, model_noon.A)
        fresh = identify(ds_noon, options=options, mode=OCCUPIED)
        np.testing.assert_allclose(model_noon.A, fresh.A)
        np.testing.assert_allclose(model_noon.B, fresh.B)

    def test_distinct_epochs_occupy_distinct_cache_slots(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        options = IdentificationOptions(order=1)
        identify_cached(_dataset(EPOCH_MIDNIGHT), options=options, mode=OCCUPIED)
        n_after_first = sum(1 for _ in Path(tmp_path).rglob("*") if _.is_file())
        identify_cached(
            _dataset(EPOCH_MIDNIGHT + timedelta(hours=12)),
            options=options,
            mode=OCCUPIED,
        )
        n_after_second = sum(1 for _ in Path(tmp_path).rglob("*") if _.is_file())
        assert n_after_second > n_after_first


class TestModelStepContracts:
    """RL401: divergence must raise, not propagate inf through the trace."""

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_first_order_free_run_divergence_raises(self):
        model = FirstOrderModel(A=np.array([[2.0]]), B=np.array([[0.0]]))
        with pytest.raises(ContractError):
            model.simulate(np.array([[1.0]]), np.zeros((2000, 1)))

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    def test_second_order_free_run_divergence_raises(self):
        model = SecondOrderModel(
            A1=np.array([[3.0]]), A2=np.array([[0.0]]), B=np.array([[0.0]])
        )
        with pytest.raises(ContractError):
            model.simulate(np.array([[1.0], [2.0]]), np.zeros((2000, 1)))

    def test_healthy_step_is_untouched(self):
        model = FirstOrderModel(A=np.array([[0.5]]), B=np.array([[1.0]]))
        out = model.step(np.array([[2.0]]), np.array([3.0]))
        np.testing.assert_allclose(out, [4.0])


class TestRlsContracts:
    """RL401: a poisoned RLS state must surface at the seam."""

    def test_nonfinite_weights_raise_on_read(self):
        rls = RecursiveLeastSquares(n_regressors=2, n_outputs=1)
        rls._weights[0, 0] = np.inf
        with pytest.raises(ContractError):
            rls.weights
        with pytest.raises(ContractError):
            rls.predict(np.ones(2))

    def test_healthy_recursion_is_untouched(self):
        rls = RecursiveLeastSquares(n_regressors=2, n_outputs=1)
        innovation = rls.update(np.array([1.0, 0.5]), np.array([2.0]))
        assert np.all(np.isfinite(innovation))
        assert np.all(np.isfinite(rls.weights))


class TestMetricsContracts:
    """RL401: metric seams validate shapes/finiteness up front."""

    def test_per_sensor_rms_rejects_row_mismatch(self):
        with pytest.raises(ContractError):
            per_sensor_rms(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_empirical_cdf_output_is_finite(self):
        values, f = empirical_cdf(np.array([3.0, np.nan, 1.0, np.inf, 2.0]))
        np.testing.assert_allclose(values, [1.0, 2.0, 3.0])
        assert np.all(np.isfinite(values))
        np.testing.assert_allclose(f[-1], 1.0)


class TestSingleLinkageTieBreak:
    """RL303: distance ties must resolve by lowest pair, not hash order."""

    def test_tied_merge_picks_lowest_pair(self):
        # Columns 0/1 and 2/3 are both exactly 1.0 apart; the lowest
        # (i, j) pair must merge first, every run.
        levels = np.array([0.0, 1.0, 10.0, 11.0])
        traces = np.tile(levels, (12, 1))
        for _ in range(20):
            labels = single_linkage(traces, k=3, min_common_samples=10)
            assert labels.tolist() == [0, 0, 1, 2]


class TestFixedFamiliesStayClean:
    """The families whose findings were all fixed must stay at zero.

    RL401 debt remains in the checked-in baseline, but every RL102,
    RL202 and RL303 finding in ``src/repro`` was fixed outright — no
    hiding new ones behind the baseline.
    """

    def test_src_has_no_rebind_cachekey_or_set_iteration_findings(self):
        from repro_lint.analysis import analyze_project
        from repro_lint.analysis.project import Project

        repo_root = Path(__file__).resolve().parents[1]
        project, errors = Project.load([repo_root / "src"])
        assert errors == []
        violations = analyze_project(project, select=["RL102", "RL202", "RL303"])
        assert violations == []
