"""Tests for unreliable-sensor screening."""

import numpy as np
import pytest

from repro.data.screening import (
    ScreeningReport,
    ScreeningThresholds,
    _longest_run_fraction,
    screen_sensors,
    sensor_health,
)
from repro.errors import DataError, NoUsableSensorsError


def make_matrix(n_ticks=960, n_sensors=5, seed=3):
    """Healthy sensors: a shared diurnal cycle plus small noise."""
    gen = np.random.default_rng(seed)
    t = np.arange(n_ticks)
    base = 20.0 + np.sin(2 * np.pi * t / 96.0)
    temps = base[:, None] + 0.05 * gen.standard_normal((n_ticks, n_sensors))
    day = (t // 96).astype(int)
    return temps, day


class TestSensorHealth:
    def test_healthy_sensor(self):
        temps, day = make_matrix()
        median = np.median(temps, axis=1)
        health = sensor_health(1, temps[:, 0], median, day)
        assert health.missing_fraction < 0.01
        assert health.longest_stuck_fraction < 0.2
        assert health.noise_level < 0.2
        assert health.consensus_deviation < 0.5

    def test_missing_fraction(self):
        temps, day = make_matrix()
        column = temps[:, 0].copy()
        column[: len(column) // 2] = np.nan
        health = sensor_health(1, column, np.median(temps, axis=1), day)
        assert health.missing_fraction == pytest.approx(0.5)

    def test_stuck_detection(self):
        temps, day = make_matrix()
        column = temps[:, 0].copy()
        column[200:] = 21.0
        health = sensor_health(1, column, np.median(temps, axis=1), day)
        assert health.longest_stuck_fraction > 0.7

    def test_drift_detection(self):
        temps, day = make_matrix()
        column = temps[:, 0] + np.linspace(0, 5, temps.shape[0])
        health = sensor_health(1, column, np.median(temps, axis=1), day)
        assert health.consensus_deviation > 2.0


class TestScreenSensors:
    def test_keeps_healthy_network(self):
        temps, day = make_matrix()
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day)
        assert report.kept_ids == (1, 2, 3, 4, 5)
        assert not report.dropped

    def test_drops_each_fault_kind(self):
        temps, day = make_matrix(n_sensors=6)
        temps = temps.copy()
        gen = np.random.default_rng(0)
        temps[:, 1] += np.linspace(0, 6, temps.shape[0])  # drift
        temps[300:, 2] = 22.0  # stuck
        temps[:, 3] += 1.5 * gen.standard_normal(temps.shape[0])  # noisy
        temps[: int(0.8 * temps.shape[0]), 4] = np.nan  # missing
        report = screen_sensors(temps, [1, 2, 3, 4, 5, 6], day)
        assert set(report.dropped) == {2, 3, 4, 5}
        assert 1 in report.kept_ids and 6 in report.kept_ids

    def test_protected_ids_survive(self):
        temps, day = make_matrix()
        temps = temps.copy()
        temps[:, 0] = np.nan
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day, protected_ids=[1])
        assert 1 in report.kept_ids

    def test_summary_mentions_drops(self):
        temps, day = make_matrix()
        temps = temps.copy()
        temps[:, 0] = np.nan
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day)
        assert "dropped 1" in report.summary()

    def test_shape_validation(self):
        temps, day = make_matrix()
        with pytest.raises(DataError):
            screen_sensors(temps, [1, 2], day)
        with pytest.raises(DataError):
            screen_sensors(temps, [1, 2, 3, 4, 5], day[:-1])

    def test_custom_thresholds(self):
        temps, day = make_matrix()
        strict = ScreeningThresholds(max_noise_level=1e-9)
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day, thresholds=strict)
        assert len(report.dropped) == 5

    def test_spike_fault_dropped(self):
        temps, day = make_matrix(n_sensors=3)
        temps = temps.copy()
        gen = np.random.default_rng(5)
        hit = gen.random(temps.shape[0]) < 0.05
        temps[hit, 0] += 8.0
        report = screen_sensors(temps, [1, 2, 3], day)
        assert 1 in report.dropped
        assert "impulsive outliers" in report.dropped[1]
        assert report.health[1].spike_fraction > 0.02

    def test_decorrelated_sensor_dropped(self):
        temps, day = make_matrix(n_sensors=4)
        temps = temps.copy()
        # An inverted diurnal cycle tracks nothing the network does —
        # the signature of a badly skewed clock or crossed channel.
        temps[:, 0] = 40.0 - temps[:, 0]
        report = screen_sensors(temps, [1, 2, 3, 4], day)
        assert 1 in report.dropped
        assert "decorrelated" in report.dropped[1]
        assert report.health[1].consensus_correlation < 0.0


class TestDegradedScreening:
    """Edge cases of the quarantine gate: empty, tiny, constant inputs."""

    def test_all_sensors_bad_reports_empty_kept(self):
        temps, day = make_matrix(n_sensors=3)
        temps = temps.copy()
        temps[:, :] = np.nan
        report = screen_sensors(temps, [1, 2, 3], day)
        assert report.kept_ids == ()
        assert set(report.dropped) == {1, 2, 3}
        assert report.n_kept == 0 and report.n_dropped == 3

    def test_require_survivors_raises_with_inventory(self):
        temps, day = make_matrix(n_sensors=3)
        temps = temps.copy()
        temps[:, :] = np.nan
        report = screen_sensors(temps, [1, 2, 3], day)
        with pytest.raises(NoUsableSensorsError, match="all 3 sensors"):
            report.require_survivors()

    def test_require_survivors_passes_through_survivors(self):
        report = ScreeningReport(kept_ids=(4,))
        assert report.require_survivors() is report

    def test_single_sensor_trace_keeps_itself(self):
        temps, day = make_matrix(n_sensors=1)
        report = screen_sensors(temps, [7], day)
        assert report.kept_ids == (7,)
        # A lone sensor IS the network median: consensus stats neutral.
        assert report.health[7].consensus_deviation < 0.1
        assert report.health[7].consensus_correlation > 0.99

    def test_longest_run_fraction_constant_series(self):
        assert _longest_run_fraction(np.full(50, 21.5)) == 1.0

    def test_longest_run_fraction_degenerate_sizes(self):
        assert _longest_run_fraction(np.array([])) == 1.0
        assert _longest_run_fraction(np.array([20.0])) == 1.0
        assert _longest_run_fraction(np.full(10, np.nan)) == 1.0

    def test_report_to_dict_machine_readable(self):
        temps, day = make_matrix(n_sensors=2)
        temps = temps.copy()
        temps[:, 1] = np.nan
        report = screen_sensors(temps, [1, 2], day)
        payload = report.to_dict()
        assert payload["kept"] == [1]
        assert 2 in payload["dropped"]
        assert set(payload["health"]) == {1, 2}
        assert "spike_fraction" in payload["health"][1]
