"""Tests for unreliable-sensor screening."""

import numpy as np
import pytest

from repro.data.screening import (
    ScreeningThresholds,
    screen_sensors,
    sensor_health,
)
from repro.errors import DataError


def make_matrix(n_ticks=960, n_sensors=5, seed=3):
    """Healthy sensors: a shared diurnal cycle plus small noise."""
    gen = np.random.default_rng(seed)
    t = np.arange(n_ticks)
    base = 20.0 + np.sin(2 * np.pi * t / 96.0)
    temps = base[:, None] + 0.05 * gen.standard_normal((n_ticks, n_sensors))
    day = (t // 96).astype(int)
    return temps, day


class TestSensorHealth:
    def test_healthy_sensor(self):
        temps, day = make_matrix()
        median = np.median(temps, axis=1)
        health = sensor_health(1, temps[:, 0], median, day)
        assert health.missing_fraction < 0.01
        assert health.longest_stuck_fraction < 0.2
        assert health.noise_level < 0.2
        assert health.consensus_deviation < 0.5

    def test_missing_fraction(self):
        temps, day = make_matrix()
        column = temps[:, 0].copy()
        column[: len(column) // 2] = np.nan
        health = sensor_health(1, column, np.median(temps, axis=1), day)
        assert health.missing_fraction == pytest.approx(0.5)

    def test_stuck_detection(self):
        temps, day = make_matrix()
        column = temps[:, 0].copy()
        column[200:] = 21.0
        health = sensor_health(1, column, np.median(temps, axis=1), day)
        assert health.longest_stuck_fraction > 0.7

    def test_drift_detection(self):
        temps, day = make_matrix()
        column = temps[:, 0] + np.linspace(0, 5, temps.shape[0])
        health = sensor_health(1, column, np.median(temps, axis=1), day)
        assert health.consensus_deviation > 2.0


class TestScreenSensors:
    def test_keeps_healthy_network(self):
        temps, day = make_matrix()
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day)
        assert report.kept_ids == (1, 2, 3, 4, 5)
        assert not report.dropped

    def test_drops_each_fault_kind(self):
        temps, day = make_matrix(n_sensors=6)
        temps = temps.copy()
        gen = np.random.default_rng(0)
        temps[:, 1] += np.linspace(0, 6, temps.shape[0])  # drift
        temps[300:, 2] = 22.0  # stuck
        temps[:, 3] += 1.5 * gen.standard_normal(temps.shape[0])  # noisy
        temps[: int(0.8 * temps.shape[0]), 4] = np.nan  # missing
        report = screen_sensors(temps, [1, 2, 3, 4, 5, 6], day)
        assert set(report.dropped) == {2, 3, 4, 5}
        assert 1 in report.kept_ids and 6 in report.kept_ids

    def test_protected_ids_survive(self):
        temps, day = make_matrix()
        temps = temps.copy()
        temps[:, 0] = np.nan
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day, protected_ids=[1])
        assert 1 in report.kept_ids

    def test_summary_mentions_drops(self):
        temps, day = make_matrix()
        temps = temps.copy()
        temps[:, 0] = np.nan
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day)
        assert "dropped 1" in report.summary()

    def test_shape_validation(self):
        temps, day = make_matrix()
        with pytest.raises(DataError):
            screen_sensors(temps, [1, 2], day)
        with pytest.raises(DataError):
            screen_sensors(temps, [1, 2, 3, 4, 5], day[:-1])

    def test_custom_thresholds(self):
        temps, day = make_matrix()
        strict = ScreeningThresholds(max_noise_level=1e-9)
        report = screen_sensors(temps, [1, 2, 3, 4, 5], day, thresholds=strict)
        assert len(report.dropped) == 5
