"""Tests for the per-table/figure experiment runners.

Each runner executes on a shared 28-day context and is checked for the
paper's *shape* claims (who wins, which direction curves move), not its
absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.base import ExperimentResult, render_table
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def ctx(month_output):
    return ExperimentContext.create(days=28.0)


class TestBase:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.500" in text

    def test_result_render(self):
        result = ExperimentResult(
            experiment_id="x", title="t", headers=["h"], rows=[[1]], notes=["n"]
        )
        rendered = result.render()
        assert "== x: t ==" in rendered
        assert "note: n" in rendered


class TestRegistry:
    def test_all_experiments_registered(self):
        paper = {
            "table1", "table2",
            "fig2", "fig3", "fig4", "fig5", "fig6",
            "fig7", "fig8", "fig9", "fig10", "fig11",
        }
        extensions = {
            "ext-control",
            "ext-fleet",
            "ext-occupancy",
            "ext-order",
            "ext-stability",
            "ext-streaming",
        }
        robustness = {"robustness", "robustness-count"}
        assert set(EXPERIMENTS) == paper | extensions | robustness

    def test_every_paper_runner_returns_result(self, ctx):
        for experiment_id, module in EXPERIMENTS.items():
            if experiment_id.startswith(("ext-", "robustness")):
                continue  # extensions/robustness covered elsewhere (some are slow)
            result = module.run(context=ctx)
            assert isinstance(result, ExperimentResult)
            assert result.experiment_id == experiment_id
            assert result.rows
            assert result.render()

    def test_extension_runners(self, ctx):
        occupancy = EXPERIMENTS["ext-occupancy"].run(context=ctx)
        assert occupancy.rows
        order = EXPERIMENTS["ext-order"].run(context=ctx, orders=(1, 2))
        assert [row[0] for row in order.rows] == [1, 2]
        stability = EXPERIMENTS["ext-stability"].run(context=ctx, n_bootstrap=3)
        methods = {row[0] for row in stability.rows}
        assert methods == {"correlation", "euclidean"}

    def test_extension_control_runner(self, ctx):
        result = EXPERIMENTS["ext-control"].run(context=ctx, control_days=1.0)
        names = [row[0] for row in result.rows]
        assert "PI on thermostats" in names
        assert any("calendar" in n for n in names)


class TestTable1Shape:
    def test_orderings(self, ctx):
        result = EXPERIMENTS["table1"].run(context=ctx)
        values = {(row[0], row[1]): row[2] for row in result.rows}
        assert values[("occupied", 2)] < values[("occupied", 1)]
        assert values[("unoccupied", 2)] <= values[("unoccupied", 1)]
        assert values[("unoccupied", 2)] < values[("occupied", 2)]
        assert values[("unoccupied", 1)] < values[("occupied", 1)]


class TestTable2Shape:
    def test_orderings(self, ctx):
        result = EXPERIMENTS["table2"].run(context=ctx, n_random_draws=10)
        values = {row[0]: row[1] for row in result.rows}
        assert values["SMS"] < values["SRS"] < values["RS"]
        assert values["Thermostats"] > values["SRS"]


class TestFig2Shape:
    def test_spread_and_zone_ordering(self, ctx):
        result = EXPERIMENTS["fig2"].run(context=ctx)
        assert 1.0 < result.extras["spread"] < 4.0
        temps = {row[0]: row[4] for row in result.rows}
        zones = {row[0]: row[1] for row in result.rows}
        front = np.mean([t for s, t in temps.items() if zones[s] == "front"])
        back = np.mean([t for s, t in temps.items() if zones[s] == "back"])
        tstat = np.mean([t for s, t in temps.items() if zones[s] == "thermostat"])
        assert tstat <= front + 0.2
        assert back > front + 0.3


class TestFig3Shape:
    def test_second_order_dominates(self, ctx):
        result = EXPERIMENTS["fig3"].run(context=ctx)
        firsts = np.array([row[1] for row in result.rows])
        seconds = np.array([row[2] for row in result.rows])
        assert (seconds <= firsts).mean() > 0.9


class TestFig4Shape:
    def test_traces_finite_and_better_second_order(self, ctx):
        result = EXPERIMENTS["fig4"].run(context=ctx)
        measured = result.extras["measured"]
        p1 = result.extras["first_order"]
        p2 = result.extras["second_order"]
        assert np.isfinite(p1).all() and np.isfinite(p2).all()
        rms1 = np.sqrt(np.nanmean((p1 - measured) ** 2))
        rms2 = np.sqrt(np.nanmean((p2 - measured) ** 2))
        assert rms2 <= rms1


class TestFig5Shape:
    def test_horizon_errors_grow(self, ctx):
        result = EXPERIMENTS["fig5"].run(context=ctx)
        horizon_rows = [row for row in result.rows if row[0] == "horizon_hours"]
        errors2 = [row[3] for row in horizon_rows]
        assert errors2[-1] > errors2[0]
        # Second order below first order at the longest horizon.
        assert horizon_rows[-1][3] <= horizon_rows[-1][2]


class TestFig6Shape:
    def test_correlation_clustering_is_pure(self, ctx):
        result = EXPERIMENTS["fig6"].run(context=ctx)
        correlation_rows = [row for row in result.rows if row[0] == "correlation"]
        assert all(row[4] == 1.0 for row in correlation_rows)

    def test_euclidean_less_pure_than_correlation(self, ctx):
        result = EXPERIMENTS["fig6"].run(context=ctx)
        by_method = {}
        for row in result.rows:
            by_method.setdefault(row[0], []).append(row[4])
        assert np.mean(by_method["euclidean"]) <= np.mean(by_method["correlation"])


class TestFig78Shape:
    def test_correlation_clusters_tighter_than_euclidean(self, ctx):
        euclidean = EXPERIMENTS["fig7"].run(context=ctx, ks=(3,))
        correlation = EXPERIMENTS["fig8"].run(context=ctx, ks=(2,))
        # Worst per-cluster p95 diff: Euclidean's worst cluster is close
        # to the overall spread, correlation's stays below it.
        euclidean_worst = max(row[3] for row in euclidean.rows)
        correlation_worst = max(row[3] for row in correlation.rows)
        overall = euclidean.rows[0][4]
        assert correlation_worst < overall
        assert euclidean_worst >= correlation_worst - 0.2

    def test_within_correlation_higher_for_correlation_method(self, ctx):
        euclidean = EXPERIMENTS["fig7"].run(context=ctx, ks=(3,))
        correlation = EXPERIMENTS["fig8"].run(context=ctx, ks=(2,))
        assert min(r[5] for r in correlation.rows) > min(r[5] for r in euclidean.rows)


class TestFig9Shape:
    def test_error_decreases(self, ctx):
        result = EXPERIMENTS["fig9"].run(context=ctx, n_random_draws=10)
        errors = [row[1] for row in result.rows]
        assert errors[-1] < errors[0]


class TestFig10Shape:
    def test_stratified_beats_random(self, ctx):
        result = EXPERIMENTS["fig10"].run(context=ctx, n_random_draws=5)
        for row in result.rows:
            _, sms, srs, rs = row
            assert sms <= rs
            assert srs <= rs


class TestFig11Shape:
    def test_sms_beats_rs_mostly(self, ctx):
        result = EXPERIMENTS["fig11"].run(
            context=ctx, cluster_counts=(2, 4, 6), n_random_draws=3
        )
        wins = sum(1 for row in result.rows if row[1] <= row[3])
        assert wins >= 2
