"""Graceful shutdown and snapshot recovery.

Satellite claims of the serving PR: a SIGINT/SIGTERM during ``repro
stream`` drains between ticks and seals a named snapshot whose restored
pipeline resumes tick-for-tick; snapshots round-trip across a real
process boundary with byte-identical predictions; and a corrupt or
missing snapshot surfaces as the typed :class:`SnapshotError`, never a
pickle traceback.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.cli import AUTOSAVE_SNAPSHOT, main
from repro.core.artifacts import ArtifactCache, default_cache
from repro.errors import SnapshotError
from repro.streaming import (
    GateThresholds,
    GracefulShutdown,
    OnlinePipeline,
    PredictionService,
    ReplaySource,
    ServiceConfig,
    build_request,
    load_snapshot,
    save_snapshot,
    snapshot_key,
)

from tests.conftest import make_linear_dataset

REPO_ROOT = Path(__file__).resolve().parents[1]

WIDE_GATE = GateThresholds(
    min_plausible_c=-1000.0, max_plausible_c=1000.0, max_step_c=1000.0
)


@pytest.fixture(scope="module")
def dataset():
    return make_linear_dataset(n_days=2.0, noise=0.01)


def fresh_pipeline(dataset):
    return OnlinePipeline(
        dataset.sensor_ids,
        dataset.channels.n_channels,
        order=2,
        gate_thresholds=WIDE_GATE,
    )


def one_prediction(pipeline, horizon=6):
    """The stripped response payload for one canonical request."""
    service = PredictionService(pipeline, ServiceConfig(max_horizon_ticks=64))
    request = build_request(
        {"id": "probe", "horizon_ticks": horizon},
        pipeline.estimator.last_inputs(),
        "probe",
        64,
    )
    service.submit(request)
    [response] = service.drain()
    payload = response.to_payload()
    payload.pop("latency_s")
    return payload


class TestGracefulShutdown:
    def test_first_signal_sets_flag_second_escapes(self):
        with GracefulShutdown() as stop:
            assert not stop.triggered
            os.kill(os.getpid(), signal.SIGINT)
            assert stop.triggered
            assert stop.signal_number == signal.SIGINT
            assert stop.requested() is True
            # The second signal falls through to the previous handler,
            # so a wedged drain stays interruptible.
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)

    def test_handlers_restored_on_exit(self):
        before = signal.getsignal(signal.SIGTERM)
        with GracefulShutdown():
            assert signal.getsignal(signal.SIGTERM) != before
        assert signal.getsignal(signal.SIGTERM) == before


class TestStreamInterrupt:
    def test_sigint_drains_between_ticks_and_resumes_tick_for_tick(self, dataset):
        ticks = list(ReplaySource(dataset))
        cut = 40
        full = fresh_pipeline(dataset)
        full.run(iter(ticks))

        part = fresh_pipeline(dataset)
        with GracefulShutdown() as stop:

            def interrupted_source():
                for i, tick in enumerate(ticks):
                    if i == cut:
                        os.kill(os.getpid(), signal.SIGINT)
                    yield tick

            part.run(interrupted_source(), should_stop=stop.requested)
            assert stop.triggered
        # The loop stopped on the tick boundary, never mid-tick.
        assert part.summary.n_ticks == cut

        save_snapshot("test-resume", part)
        restored = load_snapshot("test-resume", required=True)
        restored.run(iter(ticks[cut:]))
        # Interrupt + snapshot + resume is invisible: same summary and
        # bit-identical predictions as the uninterrupted run.
        assert restored.summary == full.summary
        np.testing.assert_array_equal(
            restored.predict_ahead(np.tile(dataset.inputs[-1], (6, 1))),
            full.predict_ahead(np.tile(dataset.inputs[-1], (6, 1))),
        )

    def test_cli_stream_interrupt_saves_autosave_snapshot(
        self, dataset, monkeypatch, capsys
    ):
        import repro.cli as cli_mod

        ticks = list(ReplaySource(dataset))
        cut = 60

        def fake_build(args, forgetting=1.0, should_stop=None):
            pipeline = fresh_pipeline(dataset)

            def source():
                for i, tick in enumerate(ticks):
                    if i == cut:
                        os.kill(os.getpid(), signal.SIGINT)
                    yield tick

            pipeline.run(source(), should_stop=should_stop)
            return pipeline

        monkeypatch.setattr(cli_mod, "_build_pipeline", fake_build)
        rc = main(["stream"])
        out, err = capsys.readouterr()
        assert rc == 0
        assert "interrupted by signal" in err
        assert AUTOSAVE_SNAPSHOT in err
        # The autosaved snapshot holds exactly the drained state.
        saved = load_snapshot(AUTOSAVE_SNAPSHOT, required=True)
        assert saved.summary.n_ticks == cut


class TestSnapshotRecovery:
    def test_round_trip_across_processes_is_byte_identical(self, dataset):
        name = "test-crossproc"
        pipeline = fresh_pipeline(dataset)
        pipeline.run(ReplaySource(dataset))
        assert save_snapshot(name, pipeline) is not None
        expected = one_prediction(load_snapshot(name, required=True))

        script = textwrap.dedent(
            f"""
            import json
            from repro.streaming import PredictionService, ServiceConfig, build_request, load_snapshot

            pipeline = load_snapshot({name!r}, required=True)
            service = PredictionService(pipeline, ServiceConfig(max_horizon_ticks=64))
            request = build_request(
                {{"id": "probe", "horizon_ticks": 6}},
                pipeline.estimator.last_inputs(),
                "probe",
                64,
            )
            service.submit(request)
            [response] = service.drain()
            payload = response.to_payload()
            payload.pop("latency_s")
            print(json.dumps(payload, sort_keys=True))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert json.loads(proc.stdout) == json.loads(
            json.dumps(expected, sort_keys=True)
        )

    def test_corrupt_snapshot_raises_typed_error_not_traceback(self, dataset):
        name = "test-corrupt"
        pipeline = fresh_pipeline(dataset)
        save_snapshot(name, pipeline)
        path = default_cache().path_for(snapshot_key(name))
        assert path.exists()
        path.write_bytes(b"this is not a pickle")
        with pytest.raises(SnapshotError, match="missing or corrupt"):
            load_snapshot(name, required=True)
        # The corrupt entry self-healed to a miss; optional loads see None.
        assert load_snapshot(name) is None

    def test_wrong_typed_artifact_is_not_a_pipeline(self):
        name = "test-wrong-type"
        default_cache().store(snapshot_key(name), {"not": "a pipeline"})
        assert load_snapshot(name) is None
        with pytest.raises(SnapshotError, match=name):
            load_snapshot(name, required=True)

    def test_missing_snapshot_required_raises(self):
        assert load_snapshot("test-never-saved") is None
        with pytest.raises(SnapshotError, match="test-never-saved"):
            load_snapshot("test-never-saved", required=True)

    def test_disabled_cache_required_raises_and_save_is_noop(self, dataset):
        disabled = ArtifactCache(enabled=False)
        assert save_snapshot("test-disabled", fresh_pipeline(dataset), disabled) is None
        with pytest.raises(SnapshotError, match="disabled"):
            load_snapshot("test-disabled", cache=disabled, required=True)
