"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _warm_cache(week_output):
    """CLI tests run on the cached 7-day trace."""


def run_cli(capsys, *args):
    code = main(list(args))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInfo:
    def test_synthetic_info(self, capsys):
        code, out, _ = run_cli(capsys, "info", "--days", "7")
        assert code == 0
        assert "sensors (27)" in out
        assert "usable occupied days" in out

    def test_loaded_info(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "simulate", "--days", "7", "--output", str(tmp_path / "trace")
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "info", "--input", str(tmp_path / "trace"))
        assert code == 0
        assert "sensors (27)" in out


class TestSimulate:
    def test_writes_csv(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "simulate", "--days", "7", "--output", str(tmp_path / "t"), "--full"
        )
        assert code == 0
        assert (tmp_path / "t.csv").exists()
        assert (tmp_path / "t.meta.json").exists()
        assert "41 sensors" in out


class TestFitClusterSelect:
    def test_fit(self, capsys):
        code, out, _ = run_cli(capsys, "fit", "--days", "7", "--order", "2")
        assert code == 0
        assert "90th-percentile RMS error" in out

    def test_cluster(self, capsys):
        code, out, _ = run_cli(capsys, "cluster", "--days", "7")
        assert code == 0
        assert "cluster 0" in out and "cluster 1" in out

    def test_select(self, capsys):
        code, out, _ = run_cli(capsys, "select", "--days", "7", "--strategy", "sms")
        assert code == 0
        assert "99th-percentile cluster-mean error" in out


class TestSnapshot:
    def test_renders_floorplan(self, capsys):
        code, out, _ = run_cli(capsys, "snapshot", "--days", "7")
        assert code == 0
        assert "FRONT" in out and "BACK" in out
        assert "occupancy at snapshot" in out

    def test_explicit_tick(self, capsys):
        code, out, _ = run_cli(capsys, "snapshot", "--days", "7", "--tick", "100")
        assert code == 0
        assert "snapshot 2013-02-01" in out


class TestExperiment:
    def test_single_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "fig2", "--days", "7")
        assert code == 0
        assert "== fig2" in out

    def test_unknown_experiment(self, capsys):
        code, _, err = run_cli(capsys, "experiment", "fig99", "--days", "7")
        assert code == 2
        assert "unknown experiment" in err


class TestReport:
    def test_report_to_file(self, capsys, tmp_path, month_output):
        target = tmp_path / "report.txt"
        code, out, _ = run_cli(capsys, "report", "--days", "28", "--output", str(target))
        assert code == 0
        text = target.read_text()
        assert "== table1" in text
        assert "== fig11" in text
