"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _warm_cache(week_output):
    """CLI tests run on the cached 7-day trace."""


def run_cli(capsys, *args):
    code = main(list(args))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestInfo:
    def test_synthetic_info(self, capsys):
        code, out, _ = run_cli(capsys, "info", "--days", "7")
        assert code == 0
        assert "sensors (27)" in out
        assert "usable occupied days" in out

    def test_loaded_info(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "simulate", "--days", "7", "--output", str(tmp_path / "trace")
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "info", "--input", str(tmp_path / "trace"))
        assert code == 0
        assert "sensors (27)" in out


class TestSimulate:
    def test_writes_csv(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "simulate", "--days", "7", "--output", str(tmp_path / "t"), "--full"
        )
        assert code == 0
        assert (tmp_path / "t.csv").exists()
        assert (tmp_path / "t.meta.json").exists()
        assert "41 sensors" in out


class TestFitClusterSelect:
    def test_fit(self, capsys):
        code, out, _ = run_cli(capsys, "fit", "--days", "7", "--order", "2")
        assert code == 0
        assert "90th-percentile RMS error" in out

    def test_cluster(self, capsys):
        code, out, _ = run_cli(capsys, "cluster", "--days", "7")
        assert code == 0
        assert "cluster 0" in out and "cluster 1" in out

    def test_select(self, capsys):
        code, out, _ = run_cli(capsys, "select", "--days", "7", "--strategy", "sms")
        assert code == 0
        assert "99th-percentile cluster-mean error" in out


class TestSnapshot:
    def test_renders_floorplan(self, capsys):
        code, out, _ = run_cli(capsys, "snapshot", "--days", "7")
        assert code == 0
        assert "FRONT" in out and "BACK" in out
        assert "occupancy at snapshot" in out

    def test_explicit_tick(self, capsys):
        code, out, _ = run_cli(capsys, "snapshot", "--days", "7", "--tick", "100")
        assert code == 0
        assert "snapshot 2013-02-01" in out


class TestExperiment:
    def test_single_experiment(self, capsys):
        code, out, _ = run_cli(capsys, "experiment", "fig2", "--days", "7")
        assert code == 0
        assert "== fig2" in out

    def test_unknown_experiment(self, capsys):
        code, _, err = run_cli(capsys, "experiment", "fig99", "--days", "7")
        assert code == 2
        assert "unknown experiment" in err


class TestReport:
    def test_report_to_file(self, capsys, tmp_path, month_output):
        target = tmp_path / "report.txt"
        code, out, _ = run_cli(capsys, "report", "--days", "28", "--output", str(target))
        assert code == 0
        text = target.read_text()
        assert "== table1" in text
        assert "== fig11" in text
        # An off-protocol trace length is stated in the header.
        assert "28-day synthetic trace" in text
        assert "OFF-PROTOCOL: paper uses 98 days" in text

    def test_defaults_are_paper_protocol(self):
        """experiment/report default to the paper's 98 days; the quick
        interactive subcommands keep the cheaper 28-day default."""
        from repro.cli import _build_parser

        parser = _build_parser()
        assert parser.parse_args(["report"]).days == 98.0
        assert parser.parse_args(["experiment", "all"]).days == 98.0
        assert parser.parse_args(["experiment", "all"]).jobs == 1
        assert parser.parse_args(["fit"]).days == 28.0


class TestJobs:
    def test_parallel_report_matches_serial(self, capsys, tmp_path, week_output):
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        code, _, _ = run_cli(
            capsys, "report", "--days", "7", "--output", str(serial)
        )
        assert code == 0
        code, _, _ = run_cli(
            capsys, "report", "--days", "7", "--jobs", "2", "--output", str(parallel)
        )
        assert code == 0
        assert serial.read_bytes() == parallel.read_bytes()


class TestRobustnessCommand:
    def test_degradation_curve_renders(self, capsys):
        code, out, _ = run_cli(capsys, "robustness", "--days", "7")
        assert code == 0
        assert "== robustness:" in out
        assert "quarantined" in out
        assert "max quarantined" in out

    def test_default_is_paper_protocol(self):
        from repro.cli import _build_parser

        assert _build_parser().parse_args(["robustness"]).days == 98.0


class TestPartialFailure:
    """A raising experiment degrades the report instead of killing it."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self, tmp_path, monkeypatch):
        """Renders must really execute for the injected failure to fire."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_report_renders_survivors_and_exits_1(self, capsys, tmp_path, monkeypatch):
        from repro.errors import DataError
        from repro.experiments import EXPERIMENTS

        def _boom(context=None):
            raise DataError("injected mid-report failure")

        monkeypatch.setattr(EXPERIMENTS["fig9"], "run", _boom)
        target = tmp_path / "report.txt"
        code, _, err = run_cli(
            capsys, "report", "--days", "7", "--jobs", "4", "--output", str(target)
        )
        assert code == 1
        text = target.read_text()
        assert "== FAILED experiments (1) ==" in text
        assert "fig9: DataError" in text
        assert "== table1" in text and "== fig11" in text  # survivors rendered
        assert "fig9: DataError" in err

    def test_failed_parallel_report_otherwise_matches_serial(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.errors import DataError
        from repro.experiments import EXPERIMENTS

        def _boom(context=None):
            raise DataError("injected")

        monkeypatch.setattr(EXPERIMENTS["fig9"], "run", _boom)
        serial = tmp_path / "serial.txt"
        parallel = tmp_path / "parallel.txt"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-serial"))
        code, _, _ = run_cli(capsys, "report", "--days", "7", "--output", str(serial))
        assert code == 1
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache-parallel"))
        code, _, _ = run_cli(
            capsys, "report", "--days", "7", "--jobs", "4", "--output", str(parallel)
        )
        assert code == 1
        assert serial.read_bytes() == parallel.read_bytes()

    def test_single_experiment_total_failure_exits_2(self, capsys, monkeypatch):
        from repro.errors import DataError
        from repro.experiments import EXPERIMENTS

        def _boom(context=None):
            raise DataError("injected")

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _boom)
        code, _, err = run_cli(capsys, "experiment", "fig2", "--days", "7")
        assert code == 2
        assert "fig2: DataError" in err
