"""Tests for the end-to-end ThermalModelingPipeline."""

import numpy as np
import pytest

from repro.core import PipelineConfig, ThermalModelingPipeline, reduce_dataset, reduced_model
from repro.data.modes import OCCUPIED
from repro.errors import ConfigurationError
from repro.sysid.models import FirstOrderModel, SecondOrderModel


@pytest.fixture(scope="module")
def splits(month_dataset):
    from repro.geometry.layout import THERMOSTAT_IDS

    wireless = month_dataset.select_sensors(
        [s for s in month_dataset.sensor_ids if s not in THERMOSTAT_IDS]
    )
    return wireless.split_half_days(OCCUPIED)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(cluster_method="magic")
        with pytest.raises(ConfigurationError):
            PipelineConfig(selection_strategy="magic")
        with pytest.raises(ConfigurationError):
            PipelineConfig(model_order=3)
        with pytest.raises(ConfigurationError):
            PipelineConfig(n_clusters=0)


class TestFit:
    def test_fit_produces_all_artifacts(self, splits):
        train, _ = splits
        pipeline = ThermalModelingPipeline(PipelineConfig(n_clusters=2))
        result = pipeline.fit(train)
        assert result.clustering.k == 2
        assert len(result.selected_sensor_ids) == 2
        assert isinstance(result.model, SecondOrderModel)
        assert result.model.n_sensors == 2

    def test_first_order_option(self, splits):
        train, _ = splits
        pipeline = ThermalModelingPipeline(PipelineConfig(n_clusters=2, model_order=1))
        result = pipeline.fit(train)
        assert isinstance(result.model, FirstOrderModel)

    def test_unfitted_access_raises(self):
        with pytest.raises(ConfigurationError):
            ThermalModelingPipeline().result

    def test_every_strategy_fits(self, splits, month_dataset):
        train_w, _ = splits
        train_full, _ = month_dataset.split_half_days(OCCUPIED)
        for strategy in ("sms", "srs", "rs", "gp"):
            pipeline = ThermalModelingPipeline(
                PipelineConfig(n_clusters=2, selection_strategy=strategy)
            )
            result = pipeline.fit(train_w)
            assert result.selection.n_clusters == 2
        thermostats = ThermalModelingPipeline(
            PipelineConfig(n_clusters=2, selection_strategy="thermostats")
        )
        result = thermostats.fit(train_full)
        assert set(result.selected_sensor_ids) <= {40, 41}


class TestEvaluate:
    def test_report_metrics_sane(self, splits):
        train, valid = splits
        pipeline = ThermalModelingPipeline(PipelineConfig(n_clusters=2))
        pipeline.fit(train)
        report = pipeline.evaluate(valid)
        assert 0.0 < report.selection_percentile() < 2.0
        assert 0.0 < report.model_percentile() < 5.0
        assert "p99" in report.summary()

    def test_sms_beats_rs_through_pipeline(self, splits):
        train, valid = splits
        sms = ThermalModelingPipeline(PipelineConfig(n_clusters=2, selection_strategy="sms"))
        sms.fit(train)
        sms_error = sms.evaluate(valid).selection_percentile()
        rs_errors = []
        for seed in range(5):
            rs = ThermalModelingPipeline(
                PipelineConfig(n_clusters=2, selection_strategy="rs", seed=seed)
            )
            rs.fit(train)
            rs_errors.append(rs.evaluate(valid).selection_percentile())
        assert sms_error < np.mean(rs_errors)

    def test_reduced_dataset(self, splits):
        train, valid = splits
        pipeline = ThermalModelingPipeline(PipelineConfig(n_clusters=3))
        pipeline.fit(train)
        reduced = pipeline.reduced_dataset(valid)
        assert reduced.n_sensors == len(pipeline.result.selected_sensor_ids)


class TestReductionHelpers:
    def test_reduce_dataset(self, splits):
        train, _ = splits
        from repro.selection.base import SelectionResult

        selection = SelectionResult(strategy="x", assignment={0: (1,), 1: (13,)})
        reduced = reduce_dataset(train, selection)
        assert reduced.sensor_ids == (1, 13)

    def test_reduced_model_shape(self, splits):
        train, _ = splits
        from repro.selection.base import SelectionResult

        selection = SelectionResult(strategy="x", assignment={0: (1,), 1: (13,)})
        model = reduced_model(train, selection, order=2, mode=OCCUPIED, ridge=1.0)
        assert model.n_sensors == 2
