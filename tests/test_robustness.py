"""End-to-end robustness: campaign -> quarantine -> survivors -> model.

The acceptance path of the degraded pipeline: a mixed fault campaign
(>= 3 concurrent fault kinds) on a two-week trace must flow through
screening quarantine, gap segmentation, clustering/selection and
identification on the survivors, and produce the severity-vs-RMSE
degradation-curve artifact.
"""

import numpy as np
import pytest

from repro.core.artifacts import default_cache
from repro.data.screening import screen_sensors
from repro.experiments import EXPERIMENTS
from repro.experiments.context import ExperimentContext
from repro.experiments.robustness import build_campaign
from repro.geometry.layout import THERMOSTAT_IDS
from repro.sensing.faults import apply_campaign


@pytest.fixture(scope="module")
def ctx14():
    """A two-week context (module-cached; one generation per run)."""
    return ExperimentContext.create(days=14.0)


@pytest.fixture(scope="module")
def result14(ctx14):
    """One full severity sweep, shared by the assertions below."""
    return EXPERIMENTS["robustness"].run(context=ctx14, severities=(0.0, 1.0))


class TestCampaignQuarantine:
    def test_campaign_mixes_at_least_three_kinds(self, ctx14):
        campaign = build_campaign(ctx14)
        assert len(campaign.kinds) >= 3
        assert all(f.sensor_id not in THERMOSTAT_IDS for f in campaign.faults)

    def test_full_severity_quarantines_faulted_sensors(self, ctx14):
        campaign = build_campaign(ctx14)
        injected = apply_campaign(ctx14.analysis, campaign)
        report = screen_sensors(
            injected.dataset.temperatures,
            injected.dataset.sensor_ids,
            injected.dataset.axis.day_indices(),
            protected_ids=THERMOSTAT_IDS,
        )
        faulted = {f.sensor_id for f in campaign.faults}
        assert set(report.dropped) <= faulted
        assert len(report.dropped) >= 3
        # Thermostats and clean sensors all survive.
        assert set(THERMOSTAT_IDS) <= set(report.kept_ids)
        clean = set(ctx14.analysis.sensor_ids) - faulted
        assert clean <= set(report.kept_ids)

    def test_quarantine_reasons_are_machine_readable(self, ctx14):
        campaign = build_campaign(ctx14)
        injected = apply_campaign(ctx14.analysis, campaign)
        report = screen_sensors(
            injected.dataset.temperatures,
            injected.dataset.sensor_ids,
            injected.dataset.axis.day_indices(),
            protected_ids=THERMOSTAT_IDS,
        )
        payload = report.to_dict()
        assert payload["dropped"]
        for sid in payload["dropped"]:
            assert payload["health"][sid]["sensor_id"] == sid


class TestDegradationCurve:
    def test_sweep_completes_end_to_end(self, result14):
        curve = result14.extras["curve"]
        assert curve["severity"] == [0.0, 1.0]
        # Fault-free endpoint: nothing quarantined, model fits.
        assert curve["quarantined"][0] == 0
        assert curve["model_rmse_c"][0] is not None
        # Full severity: sensors quarantined, survivors still model.
        assert curve["quarantined"][-1] >= 3
        assert curve["survivors"][-1] >= 10
        assert curve["model_rmse_c"][-1] is not None
        assert curve["selection_error_c"][-1] is not None

    def test_selection_overlap_is_a_jaccard(self, result14):
        overlaps = [o for o in result14.extras["curve"]["selection_overlap"] if o is not None]
        assert overlaps[0] == 1.0  # baseline vs itself
        assert all(0.0 <= o <= 1.0 for o in overlaps)

    def test_curve_stored_as_artifact(self, result14):
        key = result14.extras["artifact_key"]
        stored = default_cache().load(key)
        assert stored == result14.extras["curve"]

    def test_render_has_rows_and_notes(self, result14):
        text = result14.render()
        assert "== robustness:" in text
        assert "quarantined" in text
        assert "max quarantined" in text


class TestCountSweep:
    """Satellite: selection stability vs *number* of faulted sensors."""

    @pytest.fixture(scope="class")
    def count_result(self, ctx14):
        return EXPERIMENTS["robustness-count"].run(context=ctx14, counts=(0, 2))

    def test_rows_follow_the_counts(self, count_result):
        assert count_result.experiment_id == "robustness-count"
        assert [row[0] for row in count_result.rows] == [0, 2]
        curve = count_result.extras["curve"]
        assert curve["n_faulted"] == [0, 2]
        # Fault-free endpoint: full network, baseline overlap 1.0.
        assert curve["quarantined"][0] == 0
        assert curve["selection_overlap"][0] == 1.0

    def test_curve_stored_as_artifact(self, count_result):
        stored = default_cache().load(count_result.extras["artifact_key"])
        assert stored == count_result.extras["curve"]

    def test_impossible_count_rejected(self, ctx14):
        from repro.experiments.robustness import run_count_sweep

        with pytest.raises(ValueError, match="wireless sensors"):
            run_count_sweep(context=ctx14, counts=(10_000,))


class TestReplicateTraces:
    """Satellite: replicate traces come from one batched fleet pass."""

    @pytest.fixture(scope="class")
    def ctx7(self):
        return ExperimentContext.create(days=7.0)

    def test_single_replicate_is_the_context_trace_itself(self, ctx7):
        from repro.experiments.robustness import replicate_analyses

        reps = replicate_analyses(ctx7, replicates=1)
        assert reps == ((ctx7.seed, ctx7.analysis),)

    def test_invalid_replicates_rejected(self, ctx7):
        from repro.experiments.robustness import replicate_analyses

        with pytest.raises(ValueError, match="replicates"):
            replicate_analyses(ctx7, replicates=0)

    def test_batched_traces_bit_identical_to_serial(self, ctx7):
        from repro.experiments.robustness import replicate_analyses

        batched = replicate_analyses(ctx7, replicates=2, batched=True)
        serial = replicate_analyses(ctx7, replicates=2, batched=False)
        assert [s for s, _ in batched] == [s for s, _ in serial]
        assert batched[0][0] == ctx7.seed  # replicate 0 keeps the context seed
        for (_, fast), (_, slow) in zip(batched, serial):
            assert fast.sensor_ids == slow.sensor_ids
            np.testing.assert_array_equal(fast.temperatures, slow.temperatures)

    def test_replicated_sweep_unchanged_vs_serial_path(self, ctx7):
        from repro.experiments.robustness import run

        kwargs = dict(context=ctx7, severities=(0.0, 0.75), replicates=2)
        fast = run(batched=True, **kwargs)
        slow = run(batched=False, **kwargs)
        assert fast.rows == slow.rows
        assert fast.extras["curve"] == slow.extras["curve"]
        assert any("2 seed replicates" in note for note in fast.notes)


class TestDeterminism:
    def test_sweep_is_reproducible(self, ctx14, result14):
        again = EXPERIMENTS["robustness"].run(context=ctx14, severities=(0.0, 1.0))
        assert again.render() == result14.render()
        assert again.extras["curve"] == result14.extras["curve"]

    def test_campaign_injection_deterministic(self, ctx14):
        campaign = build_campaign(ctx14).scaled(0.75)
        one = apply_campaign(ctx14.analysis, campaign)
        two = apply_campaign(ctx14.analysis, campaign)
        np.testing.assert_array_equal(
            one.dataset.temperatures, two.dataset.temperatures
        )
