"""Tests for dataset assembly and the synthetic data path."""

import numpy as np
import pytest

from repro.data.assemble import AssemblyConfig, assemble_dataset
from repro.data.modes import OCCUPIED
from repro.data.synth import SynthConfig, clear_cache, generate
from repro.errors import DataError
from repro.geometry.layout import (
    CEILING_SENSOR_IDS,
    RELIABLE_GROUND_SENSOR_IDS,
    THERMOSTAT_IDS,
    UNRELIABLE_GROUND_SENSOR_IDS,
)
from repro.simulation.simulator import SimulationConfig


class TestAssemble:
    def test_axis_and_shapes(self, week_output):
        full = assemble_dataset(week_output.raw)
        assert full.axis.period == 900.0
        assert full.n_sensors == 41
        assert full.inputs.shape[1] == 7

    def test_sensor_subset(self, week_output):
        sub = assemble_dataset(week_output.raw, sensor_ids=[1, 3, 40])
        assert sub.sensor_ids == (1, 3, 40)

    def test_positions_attached(self, week_output):
        full = assemble_dataset(week_output.raw)
        assert 1 in full.sensor_positions
        assert full.sensor_positions[1].y > 5.0  # sensor 1 is in the back

    def test_temperatures_track_ground_truth(self, week_output):
        """Resampled sensor readings stay within sensor accuracy + noise
        of the true temperature at their location."""
        full = assemble_dataset(week_output.raw)
        sim = week_output.simulation
        for sid in (1, 13, 27):
            column = full.temperature_of(sid)
            spec = week_output.raw.layout[sid]
            truth = sim.temperature_trace(spec.position)
            # Compare on the assembled grid (15 min = every 15th step).
            stride = int(round(full.axis.period / sim.axis.period))
            truth_grid = truth[:: stride][: full.n_samples]
            finite = np.isfinite(column[: truth_grid.size])
            err = column[: truth_grid.size][finite] - truth_grid[finite]
            assert np.abs(np.mean(err)) < 1.0  # bias bounded
            assert np.percentile(np.abs(err - np.mean(err)), 95) < 0.4

    def test_gaps_present(self, week_output):
        full = assemble_dataset(week_output.raw)
        assert full.coverage() < 1.0

    def test_custom_period(self, week_output):
        config = AssemblyConfig(period=1800.0)
        ds = assemble_dataset(week_output.raw, config=config)
        assert ds.axis.period == 1800.0


class TestSynth:
    def test_screening_matches_paper_set(self, month_output):
        ids = set(month_output.analysis_dataset.sensor_ids)
        assert ids == set(RELIABLE_GROUND_SENSOR_IDS) | set(THERMOSTAT_IDS)
        assert not ids & set(UNRELIABLE_GROUND_SENSOR_IDS)
        assert not ids & set(CEILING_SENSOR_IDS)

    def test_cache_returns_same_object(self):
        config = SynthConfig(simulation=SimulationConfig(days=7.0))
        a = generate(config)
        b = generate(config)
        assert a is b

    def test_cache_distinguishes_seeds(self):
        a = generate(SynthConfig(simulation=SimulationConfig(days=7.0), seed=1))
        b = generate(SynthConfig(simulation=SimulationConfig(days=7.0), seed=2))
        assert a is not b
        assert not np.array_equal(
            a.analysis_dataset.temperatures, b.analysis_dataset.temperatures
        )

    def test_clear_cache(self):
        config = SynthConfig(simulation=SimulationConfig(days=7.0), seed=123)
        a = generate(config)
        clear_cache()
        b = generate(config)
        assert a is not b
        np.testing.assert_array_equal(
            a.analysis_dataset.temperatures, b.analysis_dataset.temperatures
        )

    def test_usable_days_fewer_than_calendar_days(self, month_output):
        """Outages cost usable days, as in the paper (98 -> 64)."""
        ds = month_output.analysis_dataset
        usable = ds.usable_days(OCCUPIED)
        assert 14 <= len(usable) <= 28

    def test_inputs_cover_expected_ranges(self, month_output):
        ds = month_output.analysis_dataset
        flows = ds.vav_flows()
        finite = np.isfinite(flows)
        assert flows[finite].min() >= 0.0
        assert flows[finite].max() < 1.0
        occupancy = ds.input_channel("occupancy")
        assert np.nanmax(occupancy) > 50
        lighting = ds.input_channel("lighting")
        assert set(np.unique(lighting[np.isfinite(lighting)])) <= {0.0, 1.0}
