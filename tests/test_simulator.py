"""Tests for the end-to-end auditorium simulator.

These are behaviour-level checks on short runs: schedules respected,
realistic temperature levels, the paper's cool-front / warm-back
pattern, determinism.
"""

from datetime import datetime

import numpy as np
import pytest

from repro.geometry import Point
from repro.simulation import AuditoriumSimulator, SimulationConfig, SimulationResult


@pytest.fixture(scope="module")
def result() -> SimulationResult:
    # 2013-02-01 is a Friday: the seminar fills the room at noon.
    return AuditoriumSimulator(SimulationConfig(days=2.0)).run()


class TestBasics:
    def test_shapes(self, result):
        n = result.n_steps
        assert n == 2 * 1440
        assert result.zone_temps.shape == (n, 30)
        assert result.vav_flows.shape == (n, 4)
        assert result.thermostat_readings.shape == (n, 2)
        assert result.thermostat_true.shape == (n, 2)

    def test_deterministic(self, result):
        again = AuditoriumSimulator(SimulationConfig(days=2.0)).run()
        np.testing.assert_array_equal(result.zone_temps, again.zone_temps)
        np.testing.assert_array_equal(result.vav_flows, again.vav_flows)

    def test_seed_changes_trace(self, result):
        other = AuditoriumSimulator(SimulationConfig(days=2.0, seed=99)).run()
        assert not np.array_equal(result.zone_temps, other.zone_temps)

    def test_fractional_day_axis_consistent(self):
        """``end`` tracks the simulated axis for horizons not divisible
        by ``dt`` (0.33 days at dt=60 is 475.2 ticks, rounded to 475)."""
        config = SimulationConfig(days=0.33, dt=60.0)
        assert config.n_steps == 475
        from datetime import timedelta

        assert config.end == config.start + timedelta(seconds=475 * 60.0)
        result = AuditoriumSimulator(config).run()
        assert result.n_steps == config.n_steps
        # The calendar axis ends exactly where the integrator stopped.
        assert result.axis.datetime_at(config.n_steps - 1) < config.end

    def test_temperatures_realistic(self, result):
        assert result.zone_temps.min() > 14.0
        assert result.zone_temps.max() < 27.0

    def test_co2_bounded_and_above_outdoor(self, result):
        assert result.co2.min() >= 420.0 - 1e-9
        assert result.co2.max() < 3000.0

    def test_occupancy_capped(self, result):
        assert result.occupancy.max() <= 90.0 + 1e-9
        assert result.occupancy.min() >= 0.0


class TestSchedule:
    def test_standby_flow_overnight(self, result):
        config = AuditoriumSimulator(SimulationConfig(days=2.0)).plant.config
        night = result.axis.index_of(datetime(2013, 2, 1, 3, 0))
        standby = config.vav.min_flow + config.standby_flow_fraction * (
            config.vav.max_flow - config.vav.min_flow
        )
        np.testing.assert_allclose(result.vav_flows[night], standby, rtol=0.05)

    def test_occupied_mode_conditions(self, result):
        """During the Friday seminar the plant actively cools."""
        seminar = result.axis.index_of(datetime(2013, 2, 1, 12, 45))
        assert result.occupancy[seminar] > 60
        assert result.vav_temps[seminar].max() < 16.0  # cold deck air
        config = AuditoriumSimulator(SimulationConfig(days=2.0)).plant.config
        assert result.vav_flows[seminar].max() > config.vav.min_flow * 1.5


class TestSpatialPattern:
    def test_cool_front_warm_back_when_occupied(self, result):
        seminar = result.axis.index_of(datetime(2013, 2, 1, 12, 45))
        rows = result.zone_temps[seminar].reshape(5, 6).mean(axis=1)
        assert rows[0] < rows[2]  # front cooler than middle
        assert rows[0] < rows[3]

    def test_meaningful_spread_when_occupied(self, result):
        seminar = result.axis.index_of(datetime(2013, 2, 1, 12, 45))
        zone = result.zone_temps[seminar]
        assert 0.8 < zone.max() - zone.min() < 4.0

    def test_small_spread_overnight(self, result):
        night = result.axis.index_of(datetime(2013, 2, 1, 3, 0))
        zone = result.zone_temps[night]
        assert zone.max() - zone.min() < 1.0

    def test_thermostats_read_cool_while_cooling(self, result):
        """The plume bias keeps the thermostat readings at or below the
        front-row zone mean during active cooling."""
        seminar = result.axis.index_of(datetime(2013, 2, 1, 12, 45))
        front_mean = result.zone_temps[seminar].reshape(5, 6)[0].mean()
        assert result.thermostat_true[seminar].mean() <= front_mean + 0.1


class TestTraces:
    def test_temperature_trace_matches_pointwise(self, result):
        point = Point(10.0, 8.0, 0.9)
        trace = result.temperature_trace(point)
        for step in (0, 700, 2000):
            assert trace[step] == pytest.approx(result.temperature_at(point, step))

    def test_stratification(self, result):
        low = result.temperature_trace(Point(10.0, 8.0, 0.5))
        high = result.temperature_trace(Point(10.0, 8.0, 5.5))
        assert np.all(high > low)
