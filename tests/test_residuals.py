"""Tests for residual diagnostics."""

import numpy as np
import pytest

from repro.data.modes import OCCUPIED
from repro.errors import IdentificationError
from repro.sysid.identify import IdentificationOptions, identify
from repro.sysid.residuals import (
    autocorrelation,
    input_contributions,
    ljung_box,
    one_step_residuals,
    residual_report,
)
from tests.conftest import make_linear_dataset


class TestAutocorrelation:
    def test_white_noise_small_acf(self):
        series = np.random.default_rng(0).standard_normal(5000)
        acf = autocorrelation(series, 10)
        assert np.abs(acf).max() < 0.05

    def test_ar1_positive_acf(self):
        gen = np.random.default_rng(1)
        series = np.zeros(5000)
        for i in range(1, 5000):
            series[i] = 0.8 * series[i - 1] + gen.standard_normal()
        acf = autocorrelation(series, 3)
        assert acf[0] > 0.7
        assert acf[0] > acf[1] > acf[2] > 0.0

    def test_too_short_raises(self):
        with pytest.raises(IdentificationError):
            autocorrelation(np.arange(5.0), 10)

    def test_constant_series_raises(self):
        with pytest.raises(IdentificationError):
            autocorrelation(np.ones(100), 5)


class TestLjungBox:
    def test_white_noise_passes(self):
        series = np.random.default_rng(2).standard_normal(2000)
        result = ljung_box(series)
        assert result.is_white
        assert result.p_value > 0.05

    def test_correlated_series_fails(self):
        gen = np.random.default_rng(3)
        series = np.zeros(2000)
        for i in range(1, 2000):
            series[i] = 0.7 * series[i - 1] + gen.standard_normal()
        result = ljung_box(series)
        assert not result.is_white
        assert result.p_value < 1e-6


class TestResiduals:
    def test_perfect_model_zero_residuals(self):
        dataset = make_linear_dataset(noise=0.0)
        model = identify(dataset, IdentificationOptions(order=1))
        residuals = one_step_residuals(model, dataset)
        assert np.abs(residuals).max() < 1e-8

    def test_process_noise_leaves_white_residuals(self):
        """With i.i.d. *process* noise the correct ARX structure leaves
        white residuals.  (Pure *measurement* noise would not — the
        one-step residuals of an output-error system are MA(1), which is
        exactly what the whiteness test should flag.)"""
        base = make_linear_dataset(noise=0.0, n_days=8)
        gen = np.random.default_rng(11)
        temps = base.temperatures.copy()
        for k in range(temps.shape[0] - 1):
            temps[k + 1] = (
                base.true_A @ temps[k]
                + base.true_B @ base.inputs[k]
                + 0.05 * gen.standard_normal(temps.shape[1])
            )
        base.temperatures[:] = temps
        model = identify(base, IdentificationOptions(order=1))
        report = residual_report(model, base)
        assert report.white_fraction() >= 2 / 3

    def test_measurement_noise_colours_residuals(self):
        """The MA(1) structure of output-error residuals is detected."""
        dataset = make_linear_dataset(noise=0.05, n_days=8)
        model = identify(dataset, IdentificationOptions(order=1))
        report = residual_report(model, dataset)
        assert report.white_fraction() < 1.0

    def test_wrong_structure_colours_residuals(self, month_dataset):
        """A first-order model on the real (high-order) plant leaves
        structure in the residuals."""
        train, _ = month_dataset.split_half_days(OCCUPIED)
        model = identify(train, IdentificationOptions(order=1), mode=OCCUPIED)
        report = residual_report(model, train, mode=OCCUPIED)
        assert report.white_fraction() < 0.5

    def test_report_summaries(self):
        dataset = make_linear_dataset(noise=0.05, n_days=8)
        model = identify(dataset, IdentificationOptions(order=1))
        report = residual_report(model, dataset)
        assert report.rms_per_sensor().shape == (dataset.n_sensors,)
        assert report.worst_sensor() in dataset.sensor_ids


class TestInputContributions:
    def test_channels_reported(self):
        dataset = make_linear_dataset(noise=0.0)
        model = identify(dataset, IdentificationOptions(order=1))
        contributions = input_contributions(model, dataset)
        assert set(contributions) == set(dataset.channels.names)
        assert all(v >= 0 or np.isnan(v) for v in contributions.values())

    def test_real_model_flows_matter(self, month_dataset):
        train, _ = month_dataset.split_half_days(OCCUPIED)
        model = identify(train, IdentificationOptions(order=2), mode=OCCUPIED)
        contributions = input_contributions(model, train, mode=OCCUPIED)
        flow_total = sum(contributions[f"vav{i}_flow"] for i in range(1, 5))
        assert flow_total > 0.005  # the HVAC visibly drives the room
