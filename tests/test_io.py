"""Tests for CSV dataset persistence."""

import numpy as np
import pytest

from repro.data.io import load_dataset_csv, save_dataset_csv
from repro.errors import DataError
from repro.geometry.auditorium import Point
from tests.test_dataset import make_dataset


class TestRoundTrip:
    def test_values_survive(self, tmp_path):
        dataset = make_dataset(n_days=1)
        stem = tmp_path / "trace"
        save_dataset_csv(dataset, stem)
        loaded = load_dataset_csv(stem)
        assert loaded.sensor_ids == dataset.sensor_ids
        np.testing.assert_allclose(loaded.temperatures, dataset.temperatures, atol=1e-4)
        np.testing.assert_allclose(loaded.inputs, dataset.inputs, rtol=1e-5)
        assert loaded.axis.epoch == dataset.axis.epoch
        assert loaded.axis.period == dataset.axis.period

    def test_nans_survive(self, tmp_path):
        dataset = make_dataset(n_days=1)
        dataset.temperatures[3, 1] = np.nan
        dataset.inputs[5, 0] = np.nan
        stem = tmp_path / "gappy"
        save_dataset_csv(dataset, stem)
        loaded = load_dataset_csv(stem)
        assert np.isnan(loaded.temperatures[3, 1])
        assert np.isnan(loaded.inputs[5, 0])
        assert np.isfinite(loaded.temperatures[3, 0])

    def test_positions_survive(self, tmp_path):
        dataset = make_dataset(n_days=1)
        dataset.sensor_positions[10] = Point(1.5, 2.5, 0.9)
        stem = tmp_path / "pos"
        save_dataset_csv(dataset, stem)
        loaded = load_dataset_csv(stem)
        assert loaded.sensor_positions[10] == Point(1.5, 2.5, 0.9)

    def test_csv_suffix_normalized(self, tmp_path):
        dataset = make_dataset(n_days=1)
        path = save_dataset_csv(dataset, tmp_path / "trace.csv")
        assert path.name == "trace.csv"
        loaded = load_dataset_csv(tmp_path / "trace.csv")
        assert loaded.n_samples == dataset.n_samples


class TestErrors:
    def test_missing_files(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset_csv(tmp_path / "missing")

    def test_column_count_checked(self, tmp_path):
        dataset = make_dataset(n_days=1)
        stem = tmp_path / "bad"
        csv_path = save_dataset_csv(dataset, stem)
        content = csv_path.read_text().splitlines()
        content[0] = content[0] + ",extra"
        csv_path.write_text("\n".join(content))
        with pytest.raises(DataError):
            load_dataset_csv(stem)
