"""Tests for the MPC controller and closed-loop harness."""

from datetime import datetime

import numpy as np
import pytest

from repro.control import MPCConfig, ReducedModelMPC, run_closed_loop, score_closed_loop
from repro.control.closed_loop import SensorFeedbackController, make_disturbance_source
from repro.errors import ConfigurationError
from repro.geometry.auditorium import Point
from repro.simulation import SimulationConfig
from repro.sysid.models import FirstOrderModel, SecondOrderModel


def cooling_model(p=2, n_inputs=7):
    """A toy stable model where flows cool and occupancy heats."""
    a = 0.9 * np.eye(p)
    b = np.zeros((p, n_inputs))
    b[:, :4] = -0.5  # flows cool every output
    b[:, 4] = 0.01  # occupancy heats
    b[:, 6] = 0.002  # ambient leaks in
    c = 2.1 * np.ones(p)  # drives the zero-input fixed point to 21 degC
    return FirstOrderModel(A=a, B=b, c=c)


class TestMPCConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MPCConfig(horizon=0)
        with pytest.raises(ConfigurationError):
            MPCConfig(min_flow=0.5, max_flow=0.1)
        with pytest.raises(ConfigurationError):
            MPCConfig(energy_weight=-1.0)
        with pytest.raises(ConfigurationError):
            MPCConfig(move_weight=-1.0)


class TestReducedModelMPC:
    def test_impulse_response_sign(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4)
        # A unit flow impulse cools the outputs at every horizon step.
        assert (mpc._response <= 0).all()
        assert mpc._response[0].min() < -0.1

    def test_plan_shape_and_bounds(self):
        config = MPCConfig(horizon=6)
        mpc = ReducedModelMPC(cooling_model(), n_flows=4, config=config)
        history = np.full((1, 2), 23.0)
        disturbances = np.zeros((6, 3))
        plan = mpc.plan(history, disturbances)
        assert plan.shape == (6, 4)
        assert (plan >= config.min_flow - 1e-9).all()
        assert (plan <= config.max_flow + 1e-9).all()

    def test_warm_room_gets_more_flow_than_cold_room(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4, config=MPCConfig(move_weight=0.0))
        disturbances = np.zeros((mpc.config.horizon, 3))
        warm = mpc.plan(np.full((1, 2), 24.0), disturbances)
        cold = mpc.plan(np.full((1, 2), 18.0), disturbances)
        assert warm[0].sum() > cold[0].sum() + 0.1
        # A cold room wants no cooling at all.
        np.testing.assert_allclose(cold[0], mpc.config.min_flow, atol=1e-6)

    def test_occupancy_forecast_increases_cooling(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4, config=MPCConfig(move_weight=0.0))
        h = mpc.config.horizon
        empty = mpc.plan(np.full((1, 2), 21.0), np.zeros((h, 3)))
        crowd = np.zeros((h, 3))
        crowd[:, 0] = 90.0
        full = mpc.plan(np.full((1, 2), 21.0), crowd)
        assert full.sum() > empty.sum()

    def test_move_suppression_limits_jump(self):
        mpc = ReducedModelMPC(
            cooling_model(), n_flows=4, config=MPCConfig(move_weight=50.0)
        )
        disturbances = np.zeros((mpc.config.horizon, 3))
        previous = np.full(4, 0.03)
        plan = mpc.plan(np.full((1, 2), 25.0), disturbances, previous_flows=previous)
        # Strong suppression keeps the first move near the previous flow.
        assert np.abs(plan[0] - previous).max() < 0.3

    def test_second_order_model_supported(self):
        model = SecondOrderModel(
            A1=0.8 * np.eye(2),
            A2=0.1 * np.eye(2),
            B=cooling_model().B,
            c=2.1 * np.ones(2) * 2 - 2.1,  # keep roughly the same fixed point
        )
        mpc = ReducedModelMPC(model, n_flows=4)
        plan = mpc.plan(np.full((2, 2), 23.0), np.zeros((mpc.config.horizon, 3)))
        assert plan.shape == (mpc.config.horizon, 4)

    def test_n_flows_validation(self):
        with pytest.raises(ConfigurationError):
            ReducedModelMPC(cooling_model(), n_flows=7)

    def test_disturbance_shape_checked(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4)
        with pytest.raises(ConfigurationError):
            mpc.plan(np.full((1, 2), 22.0), np.zeros((3, 3)))


class TestSensorFeedbackController:
    def test_position_count_checked(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4)
        with pytest.raises(ConfigurationError):
            SensorFeedbackController(mpc, [Point(1, 1, 1)] * 3, lambda step: (0, 0, 10))

    def test_warmup_returns_none_then_flows(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4, config=MPCConfig(model_period=900.0))
        controller = SensorFeedbackController(
            mpc, [Point(1, 1, 1), Point(2, 2, 1)], lambda step: (0.0, 0.0, 10.0)
        )
        readings = np.array([22.0, 22.0])
        assert controller.decide(0, 9.0, readings, dt=60.0) is not None or True
        # First-order model: one history row suffices, so the first
        # re-plan already yields flows.
        flows = controller.decide(15, 9.0, readings, dt=60.0)
        assert flows is None or flows.shape == (4,)
        flows = controller.decide(30, 9.0, readings, dt=60.0)
        assert flows is not None

    def test_plan_held_between_replans(self):
        mpc = ReducedModelMPC(cooling_model(), n_flows=4, config=MPCConfig(model_period=900.0))
        controller = SensorFeedbackController(
            mpc, [Point(1, 1, 1), Point(2, 2, 1)], lambda step: (0.0, 0.0, 10.0)
        )
        readings = np.array([24.0, 24.0])
        first = controller.decide(0, 9.0, readings, dt=60.0)
        held = controller.decide(1, 9.0, readings * 0.0, dt=60.0)  # readings ignored off-period
        if first is not None:
            np.testing.assert_array_equal(first, held)


class TestClosedLoop:
    def test_score_metrics(self, week_output):
        metrics = score_closed_loop(week_output.simulation)
        assert 0.0 < metrics.comfort_rms < 3.0
        assert metrics.comfort_p95 >= metrics.comfort_rms * 0.5
        assert metrics.cooling_energy_kwh > 0.0
        assert "comfort RMS" in metrics.summary()

    def test_pi_baseline_runs(self):
        config = SimulationConfig(start=datetime(2013, 3, 18), days=1.0)
        result = run_closed_loop(config)
        assert result.metrics.comfort_rms < 2.0

    def test_mpc_overrides_only_occupied_hours(self):
        """Under a constant-max-flow supervisor, overnight flows still
        follow the setback schedule."""

        class MaxFlow:
            def positions(self):
                return [Point(10, 8, 1)]

            def decide(self, step, hour, readings, dt):
                return np.full(4, 0.8)

        config = SimulationConfig(start=datetime(2013, 3, 18), days=1.0)
        result = run_closed_loop(config, controller=MaxFlow())
        sim = result.simulation
        hours = sim.axis.hours_of_day()
        night = hours < 5.0
        day = (hours > 10.0) & (hours < 15.0)
        assert sim.vav_flows[night].max() < 0.2
        assert sim.vav_flows[day].min() > 0.5

    def test_disturbance_source_matches_simulation(self):
        config = SimulationConfig(start=datetime(2013, 3, 18), days=1.0)
        source = make_disturbance_source(config)
        from repro.simulation import AuditoriumSimulator

        result = AuditoriumSimulator(config).run()
        for step in (0, 600, 1200):
            occupancy, lighting, ambient = source(step)
            assert occupancy == pytest.approx(result.occupancy[step])
            assert lighting == pytest.approx(result.lighting[step])
            assert ambient == pytest.approx(result.ambient[step])
