"""Tests for the process-parallel experiment runner."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import EXPERIMENTS
from repro.experiments.runner import resolve_ids, run_experiments

#: A cheap, representative subset for parallel-equivalence checks.
SUBSET = ["table1", "fig2", "fig3", "fig6"]


class TestResolveIds:
    def test_all_expands_in_registry_order(self):
        assert resolve_ids(["all"]) == list(EXPERIMENTS)

    def test_explicit_ids_pass_through(self):
        assert resolve_ids(SUBSET) == SUBSET

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError, match="fig99"):
            resolve_ids(["fig2", "fig99"])


class TestRunExperiments:
    @pytest.fixture(autouse=True)
    def _warm(self, week_output):
        """Run against the session-cached 7-day trace."""

    def test_serial_results_are_ordered_and_rendered(self):
        results = run_experiments(SUBSET, days=7.0)
        assert [experiment_id for experiment_id, _ in results] == SUBSET
        for experiment_id, rendered in results:
            assert rendered.startswith(f"== {experiment_id}:")

    def test_parallel_is_byte_identical_to_serial(self, tmp_path, monkeypatch):
        # Fresh cache dir per run so both paths genuinely compute the
        # renders (a shared dir would let the parallel run trivially
        # replay the serial run's cached output).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = run_experiments(SUBSET, days=7.0, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel = run_experiments(SUBSET, days=7.0, jobs=2)
        assert parallel == serial

    def test_single_id_ignores_jobs(self):
        (result,) = run_experiments(["fig2"], days=7.0, jobs=8)
        assert result[0] == "fig2"

    def test_bad_jobs_rejected(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_experiments(["fig2"], days=7.0, jobs=0)


class TestRenderCache:
    @pytest.fixture(autouse=True)
    def _warm(self, week_output, tmp_path, monkeypatch):
        """Isolated cache dir per test, 7-day trace pre-generated."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_warm_run_replays_render_without_executing(self, monkeypatch):
        (first,) = run_experiments(["fig2"], days=7.0)

        def _boom(*args, **kwargs):
            raise AssertionError("experiment re-ran despite a cached render")

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _boom)
        (second,) = run_experiments(["fig2"], days=7.0)
        assert second == first

    def test_source_change_invalidates_render(self, monkeypatch):
        run_experiments(["fig2"], days=7.0)
        monkeypatch.setattr(
            "repro.experiments.runner.source_digest", lambda: "different-code"
        )
        executed = []
        original = EXPERIMENTS["fig2"].run

        def _spy(*args, **kwargs):
            executed.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _spy)
        run_experiments(["fig2"], days=7.0)
        assert executed

    def test_cache_off_recomputes(self, monkeypatch):
        run_experiments(["fig2"], days=7.0)
        monkeypatch.setenv("REPRO_CACHE", "off")
        executed = []
        original = EXPERIMENTS["fig2"].run

        def _spy(*args, **kwargs):
            executed.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _spy)
        run_experiments(["fig2"], days=7.0)
        assert executed
