"""Tests for the process-parallel experiment runner."""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import DataError, ExperimentError
from repro.experiments import EXPERIMENTS
from repro.experiments.runner import (
    RunnerOptions,
    resolve_ids,
    run_experiments,
    run_experiments_detailed,
)

#: A cheap, representative subset for parallel-equivalence checks.
SUBSET = ["table1", "fig2", "fig3", "fig6"]


class TestResolveIds:
    def test_all_expands_in_registry_order(self):
        assert resolve_ids(["all"]) == list(EXPERIMENTS)

    def test_explicit_ids_pass_through(self):
        assert resolve_ids(SUBSET) == SUBSET

    def test_unknown_id_raises(self):
        with pytest.raises(ExperimentError, match="fig99"):
            resolve_ids(["fig2", "fig99"])

    def test_unknown_id_lists_valid_ids(self):
        with pytest.raises(ExperimentError, match="table1"):
            resolve_ids(["fig99"])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            resolve_ids(["fig2", "fig3", "fig2"])


class TestRunExperiments:
    @pytest.fixture(autouse=True)
    def _warm(self, week_output):
        """Run against the session-cached 7-day trace."""

    def test_serial_results_are_ordered_and_rendered(self):
        results = run_experiments(SUBSET, days=7.0)
        assert [experiment_id for experiment_id, _ in results] == SUBSET
        for experiment_id, rendered in results:
            assert rendered.startswith(f"== {experiment_id}:")

    def test_parallel_is_byte_identical_to_serial(self, tmp_path, monkeypatch):
        # Fresh cache dir per run so both paths genuinely compute the
        # renders (a shared dir would let the parallel run trivially
        # replay the serial run's cached output).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        serial = run_experiments(SUBSET, days=7.0, jobs=1)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        parallel = run_experiments(SUBSET, days=7.0, jobs=2)
        assert parallel == serial

    def test_single_id_ignores_jobs(self):
        (result,) = run_experiments(["fig2"], days=7.0, jobs=8)
        assert result[0] == "fig2"

    def test_bad_jobs_rejected(self):
        with pytest.raises(ExperimentError, match="jobs"):
            run_experiments(["fig2"], days=7.0, jobs=0)


class TestRenderCache:
    @pytest.fixture(autouse=True)
    def _warm(self, week_output, tmp_path, monkeypatch):
        """Isolated cache dir per test, 7-day trace pre-generated."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_warm_run_replays_render_without_executing(self, monkeypatch):
        (first,) = run_experiments(["fig2"], days=7.0)

        def _boom(*args, **kwargs):
            raise AssertionError("experiment re-ran despite a cached render")

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _boom)
        (second,) = run_experiments(["fig2"], days=7.0)
        assert second == first

    def test_source_change_invalidates_render(self, monkeypatch):
        run_experiments(["fig2"], days=7.0)
        monkeypatch.setattr(
            "repro.experiments.runner.source_digest", lambda: "different-code"
        )
        executed = []
        original = EXPERIMENTS["fig2"].run

        def _spy(*args, **kwargs):
            executed.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _spy)
        run_experiments(["fig2"], days=7.0)
        assert executed

    def test_cache_off_recomputes(self, monkeypatch):
        run_experiments(["fig2"], days=7.0)
        monkeypatch.setenv("REPRO_CACHE", "off")
        executed = []
        original = EXPERIMENTS["fig2"].run

        def _spy(*args, **kwargs):
            executed.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _spy)
        run_experiments(["fig2"], days=7.0)
        assert executed


class _FakeResult:
    """Minimal stand-in for an ExperimentResult."""

    def __init__(self, text: str):
        self._text = text

    def render(self) -> str:
        return self._text


class TestRunnerOptions:
    def test_validation(self):
        with pytest.raises(ExperimentError, match="timeout_s"):
            RunnerOptions(timeout_s=0.0)
        with pytest.raises(ExperimentError, match="retries"):
            RunnerOptions(retries=-1)
        with pytest.raises(ExperimentError, match="backoff_s"):
            RunnerOptions(backoff_s=-0.1)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_TIMEOUT_S", "12.5")
        monkeypatch.setenv("REPRO_RUNNER_RETRIES", "3")
        options = RunnerOptions.from_env()
        assert options.timeout_s == 12.5
        assert options.retries == 3

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_TIMEOUT_S", raising=False)
        monkeypatch.delenv("REPRO_RUNNER_RETRIES", raising=False)
        options = RunnerOptions.from_env()
        assert options.timeout_s is None
        assert options.retries == 1

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_TIMEOUT_S", "soon")
        with pytest.raises(ExperimentError, match="REPRO_RUNNER_TIMEOUT_S"):
            RunnerOptions.from_env()

    def test_from_env_reads_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_BACKOFF_S", "0.75")
        assert RunnerOptions.from_env().backoff_s == 0.75

    def test_from_env_rejects_garbage_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_BACKOFF_S", "a while")
        with pytest.raises(ExperimentError, match="REPRO_RUNNER_BACKOFF_S"):
            RunnerOptions.from_env()


class TestFailureIsolation:
    """One failing experiment never takes down the batch."""

    @pytest.fixture(autouse=True)
    def _fresh_cache(self, week_output, tmp_path, monkeypatch):
        """Isolated cache dir so renders really execute (and fail)."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_serial_repro_error_recorded_not_raised(self, monkeypatch):
        def _boom(context=None):
            raise DataError("injected deterministic failure")

        monkeypatch.setattr(EXPERIMENTS["fig3"], "run", _boom)
        report = run_experiments_detailed(["fig2", "fig3"], days=7.0)
        assert [i for i, _ in report.results] == ["fig2"]
        assert not report.ok
        (failure,) = report.failures
        assert failure.experiment_id == "fig3"
        assert failure.error_type == "DataError"
        assert failure.attempts == 1  # deterministic: no retry burned
        assert "injected deterministic failure" in failure.message
        assert "fig3" in report.render_failures()

    def test_parallel_failure_leaves_others_byte_identical(self, monkeypatch):
        ids = ["table1", "fig2", "fig3"]
        serial = dict(run_experiments_detailed(ids, days=7.0).results)

        def _boom(context=None):
            raise DataError("injected")

        monkeypatch.setenv("REPRO_CACHE_DIR", os.environ["REPRO_CACHE_DIR"] + "-b")
        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _boom)
        report = run_experiments_detailed(ids, days=7.0, jobs=4)
        assert [f.experiment_id for f in report.failures] == ["fig2"]
        survived = dict(report.results)
        assert set(survived) == {"table1", "fig3"}
        for experiment_id, text in survived.items():
            assert text == serial[experiment_id]

    def test_worker_crash_downgraded_and_recorded(self, monkeypatch):
        def _die(context=None):
            os._exit(3)

        monkeypatch.setattr(EXPERIMENTS["fig3"], "run", _die)
        report = run_experiments_detailed(
            ["fig2", "fig3"],
            days=7.0,
            jobs=2,
            options=RunnerOptions(retries=1, backoff_s=0.01),
        )
        assert [i for i, _ in report.results] == ["fig2"]
        (failure,) = report.failures
        assert failure.experiment_id == "fig3"
        assert failure.error_type == "WorkerCrashError"
        assert failure.attempts > 1  # pool attempt + isolated retries

    def test_transient_failure_recovers_on_retry(self, monkeypatch):
        calls = {"n": 0}

        def _flaky(context=None):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient glitch")
            return _FakeResult("== fig3: recovered ==")

        monkeypatch.setattr(EXPERIMENTS["fig3"], "run", _flaky)
        report = run_experiments_detailed(
            ["fig3"], days=7.0, options=RunnerOptions(retries=1, backoff_s=0.01)
        )
        assert report.ok
        assert report.results == [("fig3", "== fig3: recovered ==")]

    def test_retry_budget_exhausts_to_failure(self, monkeypatch):
        def _always(context=None):
            raise RuntimeError("still broken")

        monkeypatch.setattr(EXPERIMENTS["fig3"], "run", _always)
        report = run_experiments_detailed(
            ["fig3"], days=7.0, options=RunnerOptions(retries=1, backoff_s=0.01)
        )
        (failure,) = report.failures
        assert failure.error_type == "RuntimeError"
        assert failure.attempts == 2

    def test_timeout_terminates_and_records(self, monkeypatch):
        def _hang(context=None):
            time.sleep(60)

        monkeypatch.setattr(EXPERIMENTS["fig3"], "run", _hang)
        start = time.monotonic()
        report = run_experiments_detailed(
            ["fig3"], days=7.0, options=RunnerOptions(timeout_s=1.0, retries=0)
        )
        elapsed = time.monotonic() - start
        (failure,) = report.failures
        assert failure.error_type == "ExperimentTimeoutError"
        assert elapsed < 30.0

    def test_legacy_wrapper_raises_after_running_everything(self, monkeypatch):
        executed = []
        original = EXPERIMENTS["fig3"].run

        def _boom(context=None):
            raise DataError("injected")

        def _spy(*args, **kwargs):
            executed.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(EXPERIMENTS["fig2"], "run", _boom)
        monkeypatch.setattr(EXPERIMENTS["fig3"], "run", _spy)
        with pytest.raises(ExperimentError, match="fig2"):
            run_experiments(["fig2", "fig3"], days=7.0)
        assert executed  # the batch kept going past the failure
