"""Tests for piecewise least-squares identification."""

import numpy as np
import pytest

from repro.data.gaps import Segment
from repro.errors import IdentificationError
from repro.sysid.identify import (
    IdentificationOptions,
    build_regression,
    identify,
    solve_least_squares,
)
from repro.sysid.models import FirstOrderModel, SecondOrderModel
from tests.conftest import make_linear_dataset


class TestOptions:
    def test_validation(self):
        with pytest.raises(IdentificationError):
            IdentificationOptions(order=3)
        with pytest.raises(IdentificationError):
            IdentificationOptions(ridge=-1.0)


class TestBuildRegression:
    def test_first_order_shapes(self, linear_dataset):
        options = IdentificationOptions(order=1)
        segments = [Segment(0, 50)]
        phi, y = build_regression(
            linear_dataset.temperatures, linear_dataset.inputs, segments, options
        )
        p, m = linear_dataset.n_sensors, linear_dataset.channels.n_channels
        assert phi.shape == (49, p + m)
        assert y.shape == (49, p)

    def test_second_order_shapes(self, linear_dataset):
        options = IdentificationOptions(order=2)
        phi, y = build_regression(
            linear_dataset.temperatures, linear_dataset.inputs, [Segment(0, 50)], options
        )
        p, m = linear_dataset.n_sensors, linear_dataset.channels.n_channels
        assert phi.shape == (48, 2 * p + m)
        assert y.shape == (48, p)

    def test_segments_never_cross_gaps(self):
        dataset = make_linear_dataset(gap_ticks=[100])
        segments = dataset.segments(min_length=2)
        options = IdentificationOptions(order=1)
        phi, y = build_regression(dataset.temperatures, dataset.inputs, segments, options)
        assert np.all(np.isfinite(phi)) and np.all(np.isfinite(y))
        # Rows: (100) - 1 from the first segment + (N-101) - 1 from the second.
        n = dataset.n_samples
        assert phi.shape[0] == (100 - 1) + (n - 101 - 1)

    def test_segment_with_nan_rejected(self, linear_dataset):
        temps = linear_dataset.temperatures.copy()
        temps[10] = np.nan
        with pytest.raises(IdentificationError):
            build_regression(
                temps, linear_dataset.inputs, [Segment(0, 50)], IdentificationOptions(order=1)
            )

    def test_short_segments_skipped(self, linear_dataset):
        options = IdentificationOptions(order=2)
        with pytest.raises(IdentificationError):
            build_regression(
                linear_dataset.temperatures, linear_dataset.inputs, [Segment(0, 2)], options
            )

    def test_intercept_column(self, linear_dataset):
        options = IdentificationOptions(order=1, fit_intercept=True)
        phi, _ = build_regression(
            linear_dataset.temperatures, linear_dataset.inputs, [Segment(0, 50)], options
        )
        np.testing.assert_array_equal(phi[:, -1], 1.0)


class TestSolve:
    def test_exact_solution(self):
        gen = np.random.default_rng(1)
        phi = gen.random((100, 5))
        w_true = gen.random((5, 2))
        y = phi @ w_true
        w = solve_least_squares(phi, y)
        np.testing.assert_allclose(w, w_true, rtol=1e-8)

    def test_ridge_shrinks(self):
        gen = np.random.default_rng(2)
        phi = gen.random((50, 3))
        y = gen.random((50, 1))
        w0 = solve_least_squares(phi, y, ridge=0.0)
        w_big = solve_least_squares(phi, y, ridge=1e4)
        assert np.linalg.norm(w_big) < np.linalg.norm(w0)

    def test_ridge_leaves_unpenalized_columns_alone(self):
        """Ridge with an unpenalized intercept matches the closed form.

        With the intercept excluded from the penalty, the solution is
        the centered-data ridge solve plus an exactly unbiased offset:
        ``W = (Xc'Xc + ridge I)^-1 Xc'Yc`` and ``c = mean(Y) - mean(X) W``.
        """
        gen = np.random.default_rng(3)
        x = gen.random((200, 4))
        y = 5.0 + x @ gen.random((4, 2)) + 0.01 * gen.standard_normal((200, 2))
        phi = np.hstack([x, np.ones((200, 1))])
        ridge = 7.5

        w = solve_least_squares(phi, y, ridge=ridge, unpenalized_columns=(4,))

        x_centered = x - x.mean(axis=0)
        y_centered = y - y.mean(axis=0)
        w_closed = np.linalg.solve(
            x_centered.T @ x_centered + ridge * np.eye(4), x_centered.T @ y_centered
        )
        c_closed = y.mean(axis=0) - x.mean(axis=0) @ w_closed
        np.testing.assert_allclose(w[:4], w_closed, rtol=1e-8)
        np.testing.assert_allclose(w[4], c_closed, rtol=1e-8)

    def test_unpenalized_column_out_of_range(self):
        with pytest.raises(IdentificationError):
            solve_least_squares(
                np.ones((10, 2)), np.ones((10, 1)), ridge=1.0, unpenalized_columns=(5,)
            )

    def test_underdetermined_rejected(self):
        with pytest.raises(IdentificationError):
            solve_least_squares(np.ones((2, 5)), np.ones((2, 1)))

    def test_rank_deficiency_warns(self):
        phi = np.ones((50, 3))  # all columns identical
        y = np.ones((50, 1))
        with pytest.warns(RuntimeWarning, match="rank-deficient"):
            solve_least_squares(phi, y)


class TestIdentify:
    def test_recovers_true_first_order_model(self):
        dataset = make_linear_dataset(noise=0.0)
        model = identify(dataset, IdentificationOptions(order=1))
        assert isinstance(model, FirstOrderModel)
        np.testing.assert_allclose(model.A, dataset.true_A, atol=1e-6)
        np.testing.assert_allclose(model.B, dataset.true_B, atol=1e-6)

    def test_recovery_robust_to_small_noise(self):
        dataset = make_linear_dataset(noise=0.01, n_days=8)
        model = identify(dataset, IdentificationOptions(order=1))
        np.testing.assert_allclose(model.A, dataset.true_A, atol=0.1)

    def test_second_order_nests_first_order_system(self):
        """On data from a first-order plant, the fitted second-order
        model predicts at least as well in one step."""
        dataset = make_linear_dataset(noise=0.0)
        model = identify(dataset, IdentificationOptions(order=2))
        assert isinstance(model, SecondOrderModel)
        # A2 should be ~0: the delta carries no extra information.
        seed = dataset.temperatures[:2]
        prediction = model.simulate(seed, dataset.inputs[1:-1])
        np.testing.assert_allclose(prediction, dataset.temperatures[2:], atol=1e-5)

    def test_identify_with_gaps(self):
        dataset = make_linear_dataset(noise=0.0, gap_ticks=[50, 51, 150])
        model = identify(dataset, IdentificationOptions(order=1))
        np.testing.assert_allclose(model.A, dataset.true_A, atol=1e-6)

    def test_intercept_recovered(self):
        dataset = make_linear_dataset(noise=0.0)
        # Shift all temperatures by a constant offset c through the
        # dynamics: T'(k) = T(k) + d  =>  T'(k+1) = A T'(k) + Bu + (I-A)d.
        d = np.array([1.0, 2.0, 3.0])
        shifted = dataset.temperatures + d
        dataset.temperatures[:] = shifted
        model = identify(dataset, IdentificationOptions(order=1, fit_intercept=True))
        expected_c = (np.eye(3) - dataset.true_A) @ d
        np.testing.assert_allclose(model.c, expected_c, atol=1e-5)

    def test_no_usable_segments(self):
        dataset = make_linear_dataset()
        dataset.temperatures[:] = np.nan
        with pytest.raises(IdentificationError):
            identify(dataset, IdentificationOptions(order=1))
