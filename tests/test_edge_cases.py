"""Targeted edge-case tests across modules.

These cover failure paths and secondary behaviours that the main suites
don't reach: sweep validation, context caching, experiment parameter
overrides, closed-loop scoring corner cases, GP prediction shapes.
"""

from datetime import datetime

import numpy as np
import pytest

from repro.data.modes import OCCUPIED
from repro.errors import ConfigurationError, IdentificationError, SelectionError
from tests.conftest import make_linear_dataset


class TestSweepValidation:
    def test_training_sweep_needs_enough_days(self):
        from repro.sysid.sweeps import training_horizon_sweep

        dataset = make_linear_dataset(n_days=4)
        with pytest.raises(IdentificationError):
            training_horizon_sweep(dataset, training_days_options=(13,), validation_days=6)

    def test_prediction_sweep_result_rows(self, month_dataset):
        from repro.sysid.sweeps import prediction_length_sweep

        train, valid = month_dataset.split_half_days(OCCUPIED)
        sweep = prediction_length_sweep(train, valid, horizons_hours=(2.5, 5.0))
        rows = sweep.as_rows()
        assert len(rows) == 2
        assert rows[0][0] == 2.5
        assert all(len(row) == 3 for row in rows)


class TestExperimentContext:
    def test_cache_by_days_and_seed(self, month_output):
        from repro.experiments.context import get_context

        a = get_context(days=28.0)
        b = get_context(days=28.0)
        assert a is b

    def test_resolve_defaults(self):
        from repro.experiments.context import resolve_context

        sentinel = object()
        assert resolve_context(sentinel) is sentinel

    def test_context_views_consistent(self, month_output):
        from repro.experiments.context import get_context
        from repro.geometry.layout import THERMOSTAT_IDS

        ctx = get_context(days=28.0)
        assert set(ctx.wireless.sensor_ids).isdisjoint(THERMOSTAT_IDS)
        assert len(ctx.analysis.sensor_ids) == len(ctx.wireless.sensor_ids) + 2


class TestExperimentParameterOverrides:
    def test_fig9_custom_counts(self, month_output):
        from repro.experiments import fig9
        from repro.experiments.context import get_context

        result = fig9.run(context=get_context(days=28.0), sensor_counts=(1, 3), n_random_draws=3)
        assert [row[0] for row in result.rows] == [1, 3]

    def test_fig7_custom_ks(self, month_output):
        from repro.experiments import fig7
        from repro.experiments.context import get_context

        result = fig7.run(context=get_context(days=28.0), ks=(2,))
        assert {row[0] for row in result.rows} == {2}

    def test_fig4_different_sensor(self, month_output):
        from repro.experiments import fig4
        from repro.experiments.context import get_context

        result = fig4.run(context=get_context(days=28.0), sensor_id=27)
        assert "Sensor 27" in result.title


class TestClosedLoopScoring:
    def test_empty_room_rejected(self, week_output):
        import dataclasses

        from repro.control import score_closed_loop

        silent = dataclasses.replace(
            week_output.simulation,
            zone_occupancy=np.zeros_like(week_output.simulation.zone_occupancy),
        )
        with pytest.raises(ConfigurationError):
            score_closed_loop(silent)

    def test_setpoint_shifts_comfort(self, week_output):
        from repro.control import score_closed_loop

        at21 = score_closed_loop(week_output.simulation, setpoint=21.0)
        at25 = score_closed_loop(week_output.simulation, setpoint=25.0)
        # The room runs near 21 when occupied, so a 25 degC target looks bad.
        assert at25.comfort_rms > at21.comfort_rms + 1.0


class TestGaussianFieldShapes:
    def test_predict_validates_alignment(self):
        from repro.selection.gp import GaussianField

        field = GaussianField(np.eye(3))
        with pytest.raises(SelectionError):
            field.predict([0], [1, 2], np.array([1.0]))

    def test_conditional_variance_ignores_self(self):
        from repro.selection.gp import GaussianField

        field = GaussianField(np.eye(3))
        assert field.conditional_variance(0, [0]) == pytest.approx(1.0)


class TestRenderTableEdgeCases:
    def test_empty_rows(self):
        from repro.experiments.base import render_table

        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_mixed_types(self):
        from repro.experiments.base import render_table

        text = render_table(["x"], [["label"], [1], [2.34567]])
        assert "2.346" in text


class TestVAVExtremes:
    def test_zero_flow_heat_rate(self):
        from repro.simulation.vav import VAVBox, VAVConfig

        box = VAVBox(1, VAVConfig(min_flow=0.0))
        box._flow = 0.0
        assert box.heat_rate_into(22.0) == 0.0

    def test_reset_restores_idle(self):
        from repro.simulation.vav import VAVBox, VAVConfig

        config = VAVConfig()
        box = VAVBox(1, config)
        box.command(config.max_flow, config.cold_deck_temp, dt=3600.0)
        box.reset()
        assert box.flow == config.min_flow
        assert box.discharge_temp == config.neutral_temp


class TestDatasetWindowingChain:
    def test_window_then_segments(self, week_dataset):
        sub = week_dataset.window(0, 96)
        segments = sub.segments(min_length=2)
        for segment in segments:
            block = sub.temperatures[segment.start : segment.stop]
            assert np.isfinite(block).all()

    def test_select_then_restrict_days(self, week_dataset):
        ids = list(week_dataset.sensor_ids[:5])
        sub = week_dataset.select_sensors(ids).restrict_days([1], mode=OCCUPIED)
        day_rows = sub.axis.day_indices() == 1
        assert np.isnan(sub.temperatures[~day_rows]).all()


class TestCLIArgumentErrors:
    def test_missing_command_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        from repro.cli import main
        from repro.version import __version__

        with pytest.raises(SystemExit):
            main(["--version"])
        assert __version__ in capsys.readouterr().out
