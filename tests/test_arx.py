"""Tests for the general n-th-order ARX models."""

import numpy as np
import pytest

from repro.data.modes import OCCUPIED
from repro.errors import IdentificationError
from repro.sysid.arx import ARXModel, build_arx_regression, identify_arx
from repro.sysid.evaluation import EvaluationOptions, evaluate_model
from repro.sysid.identify import IdentificationOptions, identify
from tests.conftest import make_linear_dataset


class TestARXModel:
    def test_order_from_lags(self):
        p = 2
        lags = tuple(0.2 * np.eye(p) for _ in range(3))
        model = ARXModel(lag_matrices=lags, B=np.zeros((p, 7)))
        assert model.order == 3
        assert model.n_sensors == 2
        assert model.n_inputs == 7

    def test_step_weights_lags(self):
        a1 = np.array([[0.5]])
        a2 = np.array([[0.25]])
        model = ARXModel(lag_matrices=(a1, a2), B=np.zeros((1, 1)))
        history = np.array([[4.0], [2.0]])  # oldest first: T(k-1)=4, T(k)=2
        out = model.step(history, np.zeros(1))
        assert out[0] == pytest.approx(0.5 * 2.0 + 0.25 * 4.0)

    def test_companion_spectral_radius_matches_simulation_stability(self):
        stable = ARXModel(
            lag_matrices=(0.5 * np.eye(1), 0.2 * np.eye(1)), B=np.zeros((1, 1))
        )
        assert stable.spectral_radius() < 1.0
        unstable = ARXModel(
            lag_matrices=(1.2 * np.eye(1), 0.3 * np.eye(1)), B=np.zeros((1, 1))
        )
        assert unstable.spectral_radius() > 1.0

    def test_empty_lags_rejected(self):
        with pytest.raises(IdentificationError):
            ARXModel(lag_matrices=(), B=np.zeros((1, 1)))

    def test_simulate_uses_full_history(self):
        model = ARXModel(
            lag_matrices=(0.5 * np.eye(1), 0.4 * np.eye(1)), B=np.zeros((1, 2))
        )
        out = model.simulate(np.array([[1.0], [2.0]]), np.zeros((3, 2)))
        # T(1) = .5*2 + .4*1 = 1.4; T(2) = .5*1.4 + .4*2 = 1.5; ...
        assert out[0, 0] == pytest.approx(1.4)
        assert out[1, 0] == pytest.approx(1.5)


class TestIdentifyARX:
    def test_order1_matches_first_order_identify(self):
        dataset = make_linear_dataset(noise=0.0)
        arx = identify_arx(dataset, order=1)
        classic = identify(dataset, IdentificationOptions(order=1))
        np.testing.assert_allclose(arx.lag_matrices[0], classic.A, atol=1e-8)
        np.testing.assert_allclose(arx.B, classic.B, atol=1e-8)

    def test_order2_spans_delta_form(self):
        """ARX(2) and the (T, ΔT) second-order form are the same model
        class, so on noiseless data their free runs coincide."""
        dataset = make_linear_dataset(noise=0.0)
        arx = identify_arx(dataset, order=2)
        delta_form = identify(dataset, IdentificationOptions(order=2))
        seed = dataset.temperatures[:2]
        u = dataset.inputs[1:50]
        np.testing.assert_allclose(
            arx.simulate(seed, u), delta_form.simulate(seed, u), atol=1e-6
        )

    def test_recovers_true_system_with_superfluous_lags(self):
        """Fitting order 3 to a first-order plant: extra lags ~ 0."""
        dataset = make_linear_dataset(noise=0.0, n_days=8)
        arx = identify_arx(dataset, order=3)
        seed = dataset.temperatures[:3]
        u = dataset.inputs[2:100]
        np.testing.assert_allclose(
            arx.simulate(seed, u), dataset.temperatures[3:101], atol=1e-5
        )

    def test_respects_gaps(self):
        dataset = make_linear_dataset(noise=0.0, gap_ticks=[60, 61])
        arx = identify_arx(dataset, order=2)
        assert np.all(np.isfinite(arx.lag_matrices[0]))

    def test_higher_order_on_real_data_evaluates(self, month_dataset):
        train, valid = month_dataset.split_half_days(OCCUPIED)
        model = identify_arx(train, order=3, mode=OCCUPIED, ridge=1e-6)
        evaluation = evaluate_model(
            model,
            valid,
            mode=OCCUPIED,
            options=EvaluationOptions(start_offset_hours=1.5, horizon_hours=13.5),
        )
        assert 0.0 < evaluation.overall_percentile(90) < 3.0

    def test_regression_shapes(self):
        dataset = make_linear_dataset()
        segments = dataset.segments(min_length=4)
        phi, y = build_arx_regression(
            dataset.temperatures, dataset.inputs, segments, order=3
        )
        p, m = dataset.n_sensors, dataset.channels.n_channels
        assert phi.shape[1] == 3 * p + m
        assert y.shape[1] == p

    def test_order_validation(self):
        dataset = make_linear_dataset()
        with pytest.raises(IdentificationError):
            identify_arx(dataset, order=0)
