"""Tests for the sensing substrate: faults, sensors, network, camera, logger."""

from datetime import datetime

import numpy as np
import pytest

from repro.errors import ConfigurationError, SensingError
from repro.geometry.auditorium import Point
from repro.geometry.layout import SensorSpec
from repro.sensing.camera import CameraConfig, OccupancyCamera
from repro.sensing.faults import FaultModel, apply_fault, dropout_mask
from repro.sensing.network import (
    NetworkConfig,
    OutageSchedule,
    WirelessNetwork,
    draw_outages,
)
from repro.sensing.sensor import SensorModel, SensorReadoutConfig

EPOCH = datetime(2013, 1, 31)


def make_spec(sensor_id=1, fault=None):
    return SensorSpec(sensor_id=sensor_id, position=Point(5, 5, 0.9), mount="desk", fault=fault)


class TestFaults:
    def test_none_passthrough(self):
        values = np.arange(5.0)
        out = apply_fault(None, values, np.arange(5.0), 1, 1)
        np.testing.assert_array_equal(out, values)

    def test_drift_grows_with_time(self):
        seconds = np.array([0.0, 86400.0, 2 * 86400.0])
        out = apply_fault("drift", np.zeros(3), seconds, 1, 1, FaultModel(drift_per_day=0.5))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_stuck_freezes_tail(self):
        values = np.arange(10.0)
        out = apply_fault("stuck", values, np.arange(10.0), 1, 1, FaultModel(stuck_after_fraction=0.5))
        assert (out[5:] == out[5]).all()
        np.testing.assert_array_equal(out[:5], values[:5])

    def test_noisy_adds_noise(self):
        out = apply_fault("noisy", np.zeros(1000), np.arange(1000.0), 1, 1)
        assert 0.3 < out.std() < 1.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(SensingError):
            apply_fault("gremlins", np.zeros(3), np.zeros(3), 1, 1)

    def test_dropout_mask_rate(self):
        keep = dropout_mask(10000, 0.9, seed=1, sensor_id=1)
        assert 0.05 < keep.mean() < 0.15

    def test_dropout_mask_validation(self):
        # Rates are validated through FaultModel like any other config.
        with pytest.raises(ConfigurationError):
            dropout_mask(10, 1.5, seed=1, sensor_id=1)


class TestSensorModel:
    def test_bias_is_per_unit_and_deterministic(self):
        a = SensorModel(make_spec(1), seed=5)
        b = SensorModel(make_spec(2), seed=5)
        assert a.bias != b.bias
        assert SensorModel(make_spec(1), seed=5).bias == a.bias

    def test_bias_within_accuracy_band(self):
        biases = [SensorModel(make_spec(i), seed=5).bias for i in range(1, 42)]
        assert max(abs(b) for b in biases) < 0.8  # ±0.5 degC spec, some slack

    def test_measure_quantizes(self):
        sensor = SensorModel(make_spec(), seed=5)
        seconds = np.arange(0.0, 600.0, 60.0)
        readings = sensor.measure(np.full(10, 21.234), seconds)
        remainder = np.abs(readings / 0.1 - np.round(readings / 0.1))
        assert remainder.max() < 1e-9

    def test_report_mask_fires_on_change(self):
        # Sensor 2's heartbeat phase (274 s) falls outside this window,
        # so the mask reflects pure report-on-change behaviour.
        sensor = SensorModel(make_spec(2), seed=5, config=SensorReadoutConfig(noise_sigma=0.0))
        seconds = np.arange(0.0, 300.0, 60.0)
        quantized = np.array([20.0, 20.0, 20.1, 20.1, 20.3])
        mask = sensor.report_mask(quantized, seconds)
        np.testing.assert_array_equal(mask, [True, False, True, False, True])

    def test_heartbeat_keeps_quiet_sensor_alive(self):
        config = SensorReadoutConfig(noise_sigma=0.0, heartbeat_period=1800.0)
        sensor = SensorModel(make_spec(), seed=5, config=config)
        seconds = np.arange(0.0, 4 * 3600.0, 60.0)
        quantized = np.full(seconds.size, 20.0)
        mask = sensor.report_mask(quantized, seconds)
        report_times = seconds[mask]
        assert np.diff(report_times).max() <= 1800.0 + 60.0

    def test_measure_alignment_checked(self):
        sensor = SensorModel(make_spec(), seed=5)
        with pytest.raises(SensingError):
            sensor.measure(np.zeros(3), np.zeros(4))


class TestOutages:
    def test_draw_outages_deterministic(self):
        config = NetworkConfig()
        a = draw_outages(86400.0 * 30, config, seed=1)
        b = draw_outages(86400.0 * 30, config, seed=1)
        assert a.station_windows == b.station_windows
        assert a.server_windows == b.server_windows

    def test_windows_inside_duration(self):
        schedule = draw_outages(86400.0 * 30, NetworkConfig(), seed=2)
        for lo, hi in schedule.station_windows + schedule.server_windows:
            assert 0.0 <= lo < hi <= 86400.0 * 30

    def test_wireless_down_includes_server_windows(self):
        schedule = OutageSchedule(station_windows=[(0.0, 10.0)], server_windows=[(20.0, 30.0)])
        assert schedule.wireless_down(5.0)
        assert schedule.wireless_down(25.0)
        assert not schedule.backend_down(5.0)
        assert schedule.backend_down(25.0)

    def test_keep_masks(self):
        schedule = OutageSchedule(station_windows=[(10.0, 20.0)])
        times = np.array([5.0, 15.0, 25.0])
        np.testing.assert_array_equal(schedule.wireless_keep_mask(times), [True, False, True])
        np.testing.assert_array_equal(schedule.backend_keep_mask(times), [True, True, True])

    def test_total_downtime_merges_overlaps(self):
        schedule = OutageSchedule(
            station_windows=[(0.0, 10.0)], server_windows=[(5.0, 15.0)]
        )
        assert schedule.total_downtime() == pytest.approx(15.0)


class TestWirelessNetwork:
    def test_packet_loss_rate(self):
        network = WirelessNetwork(NetworkConfig(packet_loss=0.3), OutageSchedule(), seed=1)
        times = np.arange(10000.0)
        kept, _ = network.deliver(1, times, times)
        assert 0.65 < kept.size / times.size < 0.75

    def test_outage_drops_everything_inside(self):
        schedule = OutageSchedule(station_windows=[(100.0, 200.0)])
        network = WirelessNetwork(NetworkConfig(packet_loss=0.0), schedule, seed=1)
        times = np.arange(0.0, 300.0, 10.0)
        kept, _ = network.deliver(1, times, times)
        assert not ((kept >= 100.0) & (kept < 200.0)).any()


class TestCamera:
    def test_snapshot_cadence(self):
        camera = OccupancyCamera(CameraConfig(snapshot_loss=0.0), seed=1)
        seconds = np.arange(0.0, 86400.0, 60.0)
        stream = camera.observe(EPOCH, seconds, np.zeros(seconds.size))
        assert np.diff(stream.times).min() == pytest.approx(900.0)

    def test_counts_track_truth(self):
        camera = OccupancyCamera(CameraConfig(snapshot_loss=0.0), seed=1)
        seconds = np.arange(0.0, 7200.0, 60.0)
        truth = np.full(seconds.size, 80.0)
        stream = camera.observe(EPOCH, seconds, truth)
        assert 65.0 < stream.values.mean() < 85.0
        assert (stream.values >= 0).all()
        assert np.allclose(stream.values, np.round(stream.values))

    def test_empty_room_counts_zero(self):
        camera = OccupancyCamera(CameraConfig(snapshot_loss=0.0), seed=1)
        seconds = np.arange(0.0, 7200.0, 60.0)
        stream = camera.observe(EPOCH, seconds, np.zeros(seconds.size))
        assert (stream.values == 0).all()
