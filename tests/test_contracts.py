"""Tests for the runtime-contracts layer (repro.contracts).

Covers the shape-spec mini-language, symbol unification across arguments
and return values, the ``ensure_*`` helpers, the runtime on/off switch,
the ``REPRO_CONTRACTS=off`` zero-overhead guarantee (the decorator must
return the *identity* in a fresh interpreter with the variable set), and
— the acceptance-critical case — an injected shape mismatch at a real
pipeline seam being caught before it can corrupt results.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import contracts
from repro.contracts import (
    check_shapes,
    contracts_enabled,
    disabled,
    ensure_finite,
    ensure_unit_range,
    set_enabled,
)
from repro.errors import ContractError, ReproError

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")

#: Most tests here exercise *armed* contracts; with REPRO_CONTRACTS=off
#: at import time the decorators are the identity, so those tests cannot
#: run (the subprocess tests below still can — they set their own env).
requires_contracts = pytest.mark.skipif(
    not contracts_enabled(),
    reason="REPRO_CONTRACTS=off at import time: decorators are the identity",
)


# ---------------------------------------------------------------------------
# check_shapes: the spec mini-language
# ---------------------------------------------------------------------------


def test_matching_shapes_pass_through():
    @check_shapes(a="n p", b="n m")
    def f(a, b):
        return a.shape[0] + b.shape[0]

    assert f(np.zeros((4, 2)), np.zeros((4, 7))) == 8


@requires_contracts
def test_symbol_mismatch_across_arguments_raises():
    @check_shapes(a="n p", b="n m")
    def f(a, b):
        return None

    with pytest.raises(ContractError, match="already bound"):
        f(np.zeros((4, 2)), np.zeros((5, 7)))


@requires_contracts
def test_wrong_ndim_raises_with_both_counts():
    @check_shapes(a="n p")
    def f(a):
        return None

    with pytest.raises(ContractError, match="dimension"):
        f(np.zeros(4))


@requires_contracts
def test_integer_token_pins_dimension():
    @check_shapes(a="2 p")
    def f(a):
        return a

    f(np.zeros((2, 9)))
    with pytest.raises(ContractError, match="requires 2"):
        f(np.zeros((3, 9)))


def test_wildcard_token_matches_any_size():
    @check_shapes(a="* p", b="* p")
    def f(a, b):
        return a, b

    f(np.zeros((1, 3)), np.zeros((50, 3)))


@requires_contracts
def test_comma_separated_spec_equivalent():
    @check_shapes(a="n,p")
    def f(a):
        return a

    f(np.zeros((2, 3)))
    with pytest.raises(ContractError):
        f(np.zeros(2))


@requires_contracts
def test_return_spec_unifies_with_argument_symbols():
    @check_shapes(a="n p", ret="n n")
    def gram(a):
        return a @ a.T

    gram(np.zeros((3, 2)))

    @check_shapes(a="n p", ret="n n")
    def broken(a):
        return np.zeros((a.shape[0] + 1, a.shape[0] + 1))

    with pytest.raises(ContractError, match="return value"):
        broken(np.zeros((3, 2)))


def test_none_arguments_are_skipped():
    @check_shapes(a="n p")
    def f(a=None):
        return a

    assert f(None) is None
    assert f() is None


@requires_contracts
def test_kwargs_and_defaults_bind_correctly():
    @check_shapes(a="n p", b="p")
    def f(a, b=None):
        return a

    f(b=np.zeros(2), a=np.zeros((4, 2)))
    with pytest.raises(ContractError):
        f(b=np.zeros(3), a=np.zeros((4, 2)))


@requires_contracts
def test_unknown_spec_name_rejected_at_decoration_time():
    with pytest.raises(ContractError, match="not parameters"):

        @check_shapes(nope="n")
        def f(a):
            return a


def test_empty_spec_rejected():
    with pytest.raises(ContractError, match="empty"):
        check_shapes(a="  ")


def test_contract_error_is_a_repro_error():
    assert issubclass(ContractError, ReproError)


# ---------------------------------------------------------------------------
# ensure_finite / ensure_unit_range
# ---------------------------------------------------------------------------


def test_ensure_finite_passes_and_returns_value():
    arr = np.ones((2, 2))
    assert ensure_finite(arr, "ones") is arr


@pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
@requires_contracts
def test_ensure_finite_raises_on_nonfinite(bad):
    with pytest.raises(ContractError, match="non-finite"):
        ensure_finite(np.array([1.0, bad]), "probe")


def test_ensure_unit_range_ignores_nan_gaps():
    arr = np.array([0.1, np.nan, 0.9])
    assert ensure_unit_range(arr, 0.0, 1.0, "frac") is arr


@requires_contracts
def test_ensure_unit_range_raises_outside_bounds():
    with pytest.raises(ContractError, match="outside the physical"):
        ensure_unit_range(np.array([0.5, 1.5]), 0.0, 1.0, "frac")
    with pytest.raises(ContractError, match="outside the physical"):
        ensure_unit_range(np.array([-0.1]), 0.0, np.inf, "flow")


def test_ensure_unit_range_all_nan_is_legal():
    arr = np.full(3, np.nan)
    assert ensure_unit_range(arr, 0.0, 1.0, "gaps") is arr


@requires_contracts
def test_ensure_unit_range_invalid_bounds():
    with pytest.raises(ContractError, match="invalid range"):
        ensure_unit_range(np.zeros(2), 1.0, 0.0, "x")


# ---------------------------------------------------------------------------
# Runtime switch
# ---------------------------------------------------------------------------


@requires_contracts
def test_disabled_context_manager_suspends_checks():
    @check_shapes(a="n n")
    def f(a):
        return a

    assert contracts_enabled()
    with disabled():
        assert not contracts_enabled()
        f(np.zeros((2, 3)))  # would raise with checks on
        ensure_finite(np.array([np.nan]))
        ensure_unit_range(np.array([5.0]), 0.0, 1.0)
    assert contracts_enabled()
    with pytest.raises(ContractError):
        f(np.zeros((2, 3)))


@requires_contracts
def test_set_enabled_round_trip():
    try:
        set_enabled(False)
        assert not contracts_enabled()
        ensure_finite(np.array([np.inf]))
    finally:
        set_enabled(True)
    assert contracts_enabled()


# ---------------------------------------------------------------------------
# REPRO_CONTRACTS=off: zero overhead
# ---------------------------------------------------------------------------


def _run_fresh(code, env_value):
    env = {"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}
    if env_value is not None:
        env[contracts.ENV_VAR] = env_value
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(code)],
        capture_output=True,
        text=True,
        env=env,
    )


@pytest.mark.parametrize("off", ["off", "0", "false", "no"])
def test_env_off_makes_decorator_the_identity(off):
    proc = _run_fresh(
        """
        from repro.contracts import check_shapes, contracts_enabled

        def f(a):
            return a

        assert not contracts_enabled()
        assert check_shapes(a="n p")(f) is f, "decorator must be the identity"
        """,
        off,
    )
    assert proc.returncode == 0, proc.stderr


def test_env_off_disables_library_seams_end_to_end():
    # With contracts off, the mismatched call falls through to the
    # seam's own (pre-existing) error handling instead of ContractError.
    proc = _run_fresh(
        """
        import numpy as np
        from repro.errors import ContractError, IdentificationError
        from repro.sysid.identify import IdentificationOptions, build_regression
        from repro.data.gaps import Segment

        try:
            build_regression(
                np.zeros((10, 3)), np.zeros((9, 2)),
                [Segment(0, 9)], IdentificationOptions(order=1),
            )
        except ContractError:
            raise SystemExit("contracts ran despite REPRO_CONTRACTS=off")
        except IdentificationError:
            pass
        """,
        "off",
    )
    assert proc.returncode == 0, proc.stderr + proc.stdout


def test_env_on_by_default():
    proc = _run_fresh(
        """
        from repro.contracts import contracts_enabled
        assert contracts_enabled()
        """,
        None,
    )
    assert proc.returncode == 0, proc.stderr


# ---------------------------------------------------------------------------
# Injected mismatches at real pipeline seams
# ---------------------------------------------------------------------------


@requires_contracts
def test_build_regression_catches_misaligned_rows():
    from repro.data.gaps import Segment
    from repro.sysid.identify import IdentificationOptions, build_regression

    temps = np.random.default_rng(0).normal(size=(20, 3))
    inputs = np.random.default_rng(1).normal(size=(19, 4))  # one row short
    with pytest.raises(ContractError, match="already bound"):
        build_regression(temps, inputs, [Segment(0, 19)], IdentificationOptions(order=1))


@requires_contracts
def test_solve_least_squares_catches_mismatched_targets():
    from repro.sysid.identify import solve_least_squares

    with pytest.raises(ContractError):
        solve_least_squares(np.zeros((10, 4)), np.zeros((9, 3)))


@requires_contracts
def test_model_simulate_catches_wrong_seed_shape():
    from repro.sysid.models import FirstOrderModel

    model = FirstOrderModel(A=0.9 * np.eye(2), B=np.zeros((2, 3)))
    ok = model.simulate(np.zeros((1, 2)), np.zeros((5, 3)))
    assert ok.shape == (5, 2)
    with pytest.raises(ContractError):
        model.simulate(np.zeros(2), np.zeros((5, 3)))  # 1-D seed, needs (order, p)


@requires_contracts
def test_similarity_catches_transposed_traces_vs_return():
    from repro.cluster.laplacian import graph_laplacian

    with pytest.raises(ContractError):
        graph_laplacian(np.zeros((4, 3)))  # non-square similarity matrix
