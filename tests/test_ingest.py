"""Partitioned ingestion: bus, partition planning, sharded runner.

The load-bearing claims:

* the bus is lossless under ``block`` (backpressure, not drops) and
  every overflow outcome is accounted;
* :func:`interleave` is seeded-deterministic across runs and never
  reorders any single topic's stream;
* an :class:`IngestPlan` routes every building to a stable shard and
  derives a content-addressed snapshot namespace;
* the sharded runner's per-building record logs are byte-identical to
  the plain serial reference — including across a crash/respawn and a
  snapshot resume — which is the subsystem's determinism contract.
"""

import pytest

from repro.errors import StreamingError
from repro.streaming import (
    BusConfig,
    EventBus,
    IngestPlan,
    Partition,
    PartitionSpec,
    ShardRunnerOptions,
    StreamTick,
    TickRecord,
    interleave,
    record_line,
    run_ingest,
    run_partition_serial,
    run_serial,
    shard_of,
    verify_parity,
)
from repro.streaming.shards import _PartitionRun, _truncate_records

#: A tiny plan: two buildings, a quarter day, two shards.
SMALL = IngestPlan(n_buildings=2, days=0.25, n_shards=2)


def tick(i: int) -> StreamTick:
    return StreamTick(
        index=i, seconds=i * 900.0, temperatures=[20.0 + i], inputs=[0.0]
    )


class TestBusConfig:
    def test_bad_bounds_rejected(self):
        with pytest.raises(StreamingError):
            BusConfig(max_queue_ticks=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(StreamingError):
            BusConfig(policy="explode")


class TestPartition:
    def test_fifo_order_and_accounting(self):
        part = Partition("green-00", BusConfig(max_queue_ticks=8))
        for i in range(3):
            assert part.offer(tick(i))
        assert [part.poll().index for _ in range(3)] == [0, 1, 2]
        assert part.poll() is None
        assert part.stats.published == 3
        assert part.stats.consumed == 3
        assert part.stats.high_water == 3
        assert part.stats.dropped == 0

    def test_block_policy_refuses_and_counts(self):
        part = Partition("green-00", BusConfig(max_queue_ticks=2, policy="block"))
        assert part.offer(tick(0)) and part.offer(tick(1))
        assert not part.offer(tick(2))
        assert part.stats.blocked == 1
        assert len(part) == 2
        # Draining one makes room; nothing was lost.
        assert part.poll().index == 0
        assert part.offer(tick(2))
        assert [part.poll().index, part.poll().index] == [1, 2]
        assert part.stats.dropped == 0

    def test_drop_newest_discards_the_offer(self):
        part = Partition("b", BusConfig(max_queue_ticks=1, policy="drop_newest"))
        assert part.offer(tick(0))
        assert part.offer(tick(1))  # "succeeds" but is dropped
        assert part.stats.dropped == 1
        assert part.poll().index == 0

    def test_drop_oldest_evicts_the_head(self):
        part = Partition("b", BusConfig(max_queue_ticks=1, policy="drop_oldest"))
        assert part.offer(tick(0))
        assert part.offer(tick(1))
        assert part.stats.dropped == 1
        assert part.poll().index == 1

    def test_empty_topic_rejected(self):
        with pytest.raises(StreamingError):
            Partition("", BusConfig())


class TestEventBus:
    def test_partitions_on_demand_and_stats(self):
        bus = EventBus(BusConfig(max_queue_ticks=4))
        bus.publish("b", tick(0))
        bus.publish("a", tick(0))
        bus.publish("a", tick(1))
        assert bus.topics == ("a", "b")
        assert bus.backlog() == 3
        stats = bus.stats_dict()
        assert stats["a"]["published"] == 2
        assert stats["b"]["published"] == 1


class TestInterleave:
    def streams(self):
        return {
            "green-00": [tick(i) for i in range(5)],
            "cupples-01": [tick(i) for i in range(3)],
            "bryan-02": [tick(i) for i in range(4)],
        }

    def test_same_seed_same_order(self):
        first = [(t, s.index) for t, s in interleave(self.streams(), seed=7)]
        second = [(t, s.index) for t, s in interleave(self.streams(), seed=7)]
        assert first == second
        assert len(first) == 12

    def test_different_seeds_differ(self):
        orders = {
            tuple(t for t, _ in interleave(self.streams(), seed=seed))
            for seed in range(8)
        }
        assert len(orders) > 1

    def test_per_topic_order_preserved(self):
        for topic in self.streams():
            indices = [
                s.index
                for t, s in interleave(self.streams(), seed=3)
                if t == topic
            ]
            assert indices == sorted(indices)


class TestShardOf:
    def test_stable_and_in_range(self):
        for n in (1, 2, 4, 7):
            for topic in ("green-00", "cupples-01", "bryan-02"):
                shard = shard_of(topic, n)
                assert 0 <= shard < n
                assert shard == shard_of(topic, n)

    def test_single_shard_takes_everything(self):
        assert shard_of("anything", 1) == 0

    def test_zero_shards_rejected(self):
        with pytest.raises(StreamingError):
            shard_of("green-00", 0)


class TestRecordLine:
    def test_canonical_bytes(self):
        record = TickRecord(
            index=3,
            updated=True,
            quarantined={8: "stale", 1: "range"},
            innovation_rms=0.25,
            drift_fired=False,
        )
        line = record_line(record)
        assert line == (
            b'{"drift_fired":false,"index":3,"innovation_rms":0.25,'
            b'"quarantined":{"1":"range","8":"stale"},"updated":true}\n'
        )
        assert record_line(record) == line


class TestIngestPlan:
    def test_validation(self):
        with pytest.raises(StreamingError):
            IngestPlan(n_buildings=0)
        with pytest.raises(StreamingError):
            IngestPlan(n_shards=0)
        with pytest.raises(StreamingError):
            IngestPlan(snapshot_every_ticks=0)

    def test_one_partition_per_building_in_fleet_order(self):
        partitions = SMALL.partitions()
        assert [p.topic for p in partitions] == [
            spec.name for spec in SMALL.buildings()
        ]
        assert all(isinstance(p, PartitionSpec) for p in partitions)

    def test_assignment_covers_every_shard(self):
        plan = IngestPlan(n_buildings=2, days=0.25, n_shards=5)
        assignment = plan.assignment()
        assert set(assignment) == set(range(5))
        routed = [spec.topic for specs in assignment.values() for spec in specs]
        assert sorted(routed) == sorted(p.topic for p in plan.partitions())
        for shard, specs in assignment.items():
            for spec in specs:
                assert shard_of(spec.topic, 5) == shard

    def test_namespace_tracks_content_not_shards(self):
        base = IngestPlan(n_buildings=2, days=0.25, n_shards=2)
        assert base.namespace() == IngestPlan(
            n_buildings=2, days=0.25, n_shards=4
        ).namespace()
        assert base.namespace() != IngestPlan(
            n_buildings=3, days=0.25, n_shards=2
        ).namespace()
        assert base.namespace() != IngestPlan(
            n_buildings=2, days=0.25, n_shards=2, seed=1
        ).namespace()


class TestTruncateRecords:
    def test_missing_log_with_empty_snapshot_is_created(self, tmp_path):
        path = tmp_path / "a.records.jsonl"
        _truncate_records(path, 0)
        assert path.read_bytes() == b""

    def test_missing_log_with_ticks_refused(self, tmp_path):
        with pytest.raises(StreamingError):
            _truncate_records(tmp_path / "a.records.jsonl", 3)

    def test_extra_and_partial_lines_cut(self, tmp_path):
        path = tmp_path / "a.records.jsonl"
        path.write_bytes(b"one\ntwo\nthree\nhalf-a-rec")
        _truncate_records(path, 2)
        assert path.read_bytes() == b"one\ntwo\n"

    def test_fewer_complete_lines_than_snapshot_refused(self, tmp_path):
        path = tmp_path / "a.records.jsonl"
        path.write_bytes(b"one\ntwo-but-cut")
        with pytest.raises(StreamingError):
            _truncate_records(path, 2)


class TestPartitionRunResume:
    """The snapshot-resume machinery, exercised in-process."""

    def test_interrupted_partition_resumes_byte_identical(self, tmp_path):
        spec = SMALL.partitions()[0]
        namespace = SMALL.namespace() + "-test-resume"
        reference = tmp_path / "serial" / spec.records_name
        run_partition_serial(spec, reference)

        # First incarnation: process part of the stream, seal, "crash"
        # (close the handle without draining the rest).
        first = _PartitionRun(spec, namespace, tmp_path / "sharded", resume=False)
        ticks = list(spec.source())
        cut = len(ticks) // 2
        assert cut > 0
        for t in ticks[:cut]:
            first.process(t, seal_every=4)
        first.seal()
        first.handle.close()

        # Second incarnation resumes from the snapshot: it replays the
        # deterministic source and skips what was already processed.
        second = _PartitionRun(spec, namespace, tmp_path / "sharded", resume=True)
        assert second.skip == cut
        for t in spec.source():
            if t.index < second.skip:
                continue
            second.process(t, seal_every=4)
        second.close()

        sharded = (tmp_path / "sharded" / spec.records_name).read_bytes()
        assert sharded == reference.read_bytes()

    def test_unsealed_tail_is_truncated_on_resume(self, tmp_path):
        spec = SMALL.partitions()[0]
        namespace = SMALL.namespace() + "-test-tail"
        first = _PartitionRun(spec, namespace, tmp_path, resume=False)
        ticks = list(spec.source())
        for t in ticks[:4]:
            first.process(t, seal_every=3)  # last seal at tick 3
        first.handle.flush()
        first.handle.close()
        # The log holds 4 records but the snapshot only covers 3: the
        # resumed run drops the unsealed tail and reprocesses it.
        second = _PartitionRun(spec, namespace, tmp_path, resume=True)
        assert second.skip == 3
        assert len((tmp_path / spec.records_name).read_bytes().splitlines()) == 3

    def test_foreign_snapshot_layout_streams_afresh(self, tmp_path):
        from repro.streaming.state import save_snapshot

        spec = SMALL.partitions()[0]
        namespace = SMALL.namespace() + "-test-foreign"
        from repro.streaming import OnlinePipeline

        foreign = OnlinePipeline((1, 2), n_inputs=3)
        save_snapshot(spec.snapshot_name(namespace), foreign)
        run = _PartitionRun(spec, namespace, tmp_path, resume=True)
        assert run.skip == 0
        assert tuple(run.pipeline.sensor_ids) == tuple(spec.source().sensor_ids)


class TestSerialReference:
    def test_serial_runner_counts_and_logs_every_tick(self, tmp_path):
        counts = run_serial(SMALL, tmp_path)
        for spec in SMALL.partitions():
            log = tmp_path / spec.records_name
            assert counts[spec.topic] == len(log.read_bytes().splitlines())
            assert counts[spec.topic] == len(spec.source())


class TestShardedParity:
    """The headline contract: sharded records == serial records, bytewise."""

    def test_sharded_run_matches_serial_bytes(self, tmp_path):
        report = run_ingest(SMALL, tmp_path / "sharded")
        assert report.completed and report.drain_clean
        assert report.restarts == 0
        run_serial(SMALL, tmp_path / "serial")
        assert (
            verify_parity(tmp_path / "sharded", tmp_path / "serial", report.topics)
            == ()
        )
        # Lossless under block: every published tick was consumed.
        for stats in report.shards.values():
            for partition in stats["partitions"].values():
                assert partition["dropped"] == 0
                assert partition["published"] == partition["consumed"]

    def test_solo_producers_match_serial_bytes(self, tmp_path):
        plan = IngestPlan(n_buildings=2, days=0.25, n_shards=2, batched=False)
        report = run_ingest(plan, tmp_path / "sharded")
        assert report.completed
        run_serial(plan, tmp_path / "serial")
        assert (
            verify_parity(tmp_path / "sharded", tmp_path / "serial", report.topics)
            == ()
        )

    def test_idle_shard_boots_and_completes(self, tmp_path):
        plan = IngestPlan(n_buildings=1, days=0.25, n_shards=2)
        report = run_ingest(plan, tmp_path / "sharded")
        assert report.completed
        assert sum(len(s["partitions"]) for s in report.shards.values()) == 1

    def test_chaos_kill_respawns_and_keeps_parity(self, tmp_path):
        plan = IngestPlan(
            n_buildings=2, days=1.0, n_shards=2, snapshot_every_ticks=12
        )
        options = ShardRunnerOptions(
            kill_shard_after_s=2.0, restart_backoff_s=0.1
        )
        report = run_ingest(plan, tmp_path / "sharded", options)
        assert report.killed_shard is not None
        assert report.restarts >= 1
        assert report.completed
        run_serial(plan, tmp_path / "serial")
        assert (
            verify_parity(tmp_path / "sharded", tmp_path / "serial", report.topics)
            == ()
        )

    def test_cache_disabled_raises_typed_error(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        with pytest.raises(StreamingError):
            run_ingest(SMALL, tmp_path / "sharded")


class TestShardRunnerOptions:
    def test_validation(self):
        with pytest.raises(StreamingError):
            ShardRunnerOptions(liveness_deadline_s=0.0)
        with pytest.raises(StreamingError):
            ShardRunnerOptions(max_restarts=-1)
        with pytest.raises(StreamingError):
            ShardRunnerOptions(restart_backoff_s=0.0)
