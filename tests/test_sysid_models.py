"""Tests for the thermal model classes."""

import numpy as np
import pytest

from repro.errors import IdentificationError
from repro.sysid.models import FirstOrderModel, SecondOrderModel


@pytest.fixture
def first_order():
    a = np.array([[0.9, 0.05], [0.05, 0.9]])
    b = np.array([[0.1, 0.0], [0.0, 0.1]])
    return FirstOrderModel(A=a, B=b)


@pytest.fixture
def second_order():
    a1 = np.array([[0.9, 0.05], [0.05, 0.9]])
    a2 = np.array([[0.3, 0.0], [0.0, 0.3]])
    b = np.array([[0.1, 0.0], [0.0, 0.1]])
    return SecondOrderModel(A1=a1, A2=a2, B=b)


class TestFirstOrder:
    def test_shapes_and_properties(self, first_order):
        assert first_order.n_sensors == 2
        assert first_order.n_inputs == 2
        assert first_order.order == 1

    def test_step(self, first_order):
        history = np.array([[20.0, 22.0]])
        out = first_order.step(history, np.array([1.0, 0.0]))
        expected = first_order.A @ history[0] + first_order.B @ [1.0, 0.0]
        np.testing.assert_allclose(out, expected)

    def test_intercept(self):
        model = FirstOrderModel(A=np.zeros((1, 1)), B=np.zeros((1, 1)), c=np.array([2.0]))
        out = model.step(np.array([[0.0]]), np.array([0.0]))
        assert out[0] == pytest.approx(2.0)

    def test_simulate_fixed_point(self, first_order):
        """Simulation from a fixed point with constant input stays put."""
        u = np.array([1.0, 1.0])
        # Fixed point: T* = (I - A)^-1 B u
        t_star = np.linalg.solve(np.eye(2) - first_order.A, first_order.B @ u)
        predicted = first_order.simulate(t_star[None, :], np.tile(u, (50, 1)))
        np.testing.assert_allclose(predicted[-1], t_star, rtol=1e-10)

    def test_simulate_shape(self, first_order):
        out = first_order.simulate(np.zeros((1, 2)), np.zeros((7, 2)))
        assert out.shape == (7, 2)

    def test_simulate_validation(self, first_order):
        with pytest.raises(IdentificationError):
            first_order.simulate(np.zeros((2, 2)), np.zeros((5, 2)))  # wrong order
        with pytest.raises(IdentificationError):
            first_order.simulate(np.zeros((1, 2)), np.zeros((5, 3)))  # wrong inputs
        bad = np.zeros((5, 2))
        bad[2, 0] = np.nan
        with pytest.raises(IdentificationError):
            first_order.simulate(np.zeros((1, 2)), bad)

    def test_matrix_validation(self):
        with pytest.raises(IdentificationError):
            FirstOrderModel(A=np.zeros((2, 3)), B=np.zeros((2, 2)))
        with pytest.raises(IdentificationError):
            FirstOrderModel(A=np.full((2, 2), np.nan), B=np.zeros((2, 2)))

    def test_interaction_matrix(self, first_order):
        interaction = first_order.interaction_matrix()
        assert np.diag(interaction).max() == 0.0
        assert interaction[0, 1] == pytest.approx(0.05)

    def test_spectral_radius(self, first_order):
        assert first_order.spectral_radius() == pytest.approx(0.95)


class TestSecondOrder:
    def test_step_uses_delta(self, second_order):
        history = np.array([[20.0, 20.0], [21.0, 20.0]])
        out = second_order.step(history, np.zeros(2))
        delta = history[1] - history[0]
        expected = second_order.A1 @ history[1] + second_order.A2 @ delta
        np.testing.assert_allclose(out, expected)

    def test_block_form_consistency(self, second_order):
        """The paper's stacked form produces the same trajectory as the
        consistent parametrization."""
        a_prime, b_prime = second_order.block_form()
        initial = np.array([[20.0, 21.0], [20.5, 21.2]])
        inputs = np.random.default_rng(0).random((20, 2))
        simulated = second_order.simulate(initial, inputs)
        # Stacked-state recursion.
        state = np.concatenate([initial[1], initial[1] - initial[0]])
        for k, u in enumerate(inputs):
            state = a_prime @ state + b_prime @ u
            np.testing.assert_allclose(state[:2], simulated[k], rtol=1e-10)
            # The Delta block equals T(k+1) - T(k) by construction.

    def test_simulate_needs_two_rows(self, second_order):
        with pytest.raises(IdentificationError):
            second_order.simulate(np.zeros((1, 2)), np.zeros((5, 2)))

    def test_stationary_when_stable(self, second_order):
        initial = np.array([[20.0, 20.0], [20.0, 20.0]])
        out = second_order.simulate(initial, np.zeros((100, 2)))
        # Stable dynamics with zero input decay toward zero.
        assert np.abs(out[-1]).max() < np.abs(out[0]).max() + 1e-9

    def test_spectral_radius_on_stacked_state(self, second_order):
        rho = second_order.spectral_radius()
        assert 0.0 < rho < 1.2
