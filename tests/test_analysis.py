"""Tests for CO₂-based occupancy estimation."""

import numpy as np
import pytest

from repro.analysis import CO2EstimatorConfig, estimate_occupancy_from_co2
from repro.errors import DataError


class TestConfig:
    def test_validation(self):
        with pytest.raises(DataError):
            CO2EstimatorConfig(room_volume=0.0)
        with pytest.raises(DataError):
            CO2EstimatorConfig(fresh_air_fraction=0.0)
        with pytest.raises(DataError):
            CO2EstimatorConfig(smoothing_ticks=0)


class TestEstimation:
    def test_tracks_camera_counts(self, week_output):
        estimate = estimate_occupancy_from_co2(week_output.raw)
        assert estimate.correlation() > 0.7
        assert estimate.mean_absolute_error() < 8.0

    def test_estimate_non_negative(self, week_output):
        estimate = estimate_occupancy_from_co2(week_output.raw)
        finite = estimate.estimate[np.isfinite(estimate.estimate)]
        assert (finite >= 0.0).all()

    def test_empty_room_estimated_near_zero(self, week_output):
        estimate = estimate_occupancy_from_co2(week_output.raw)
        empty = np.isfinite(estimate.camera) & (estimate.camera == 0)
        empty &= np.isfinite(estimate.estimate)
        assert empty.any()
        assert np.median(estimate.estimate[empty]) < 5.0

    def test_busy_room_detected(self, week_output):
        estimate = estimate_occupancy_from_co2(week_output.raw)
        busy = np.isfinite(estimate.camera) & (estimate.camera > 60)
        busy &= np.isfinite(estimate.estimate)
        if not busy.any():
            pytest.skip("no busy tick in the week trace")
        assert estimate.estimate[busy].mean() > 20.0

    def test_metrics_require_overlap(self, week_output):
        estimate = estimate_occupancy_from_co2(week_output.raw)
        estimate.camera = np.full_like(estimate.camera, np.nan)
        with pytest.raises(DataError):
            estimate.mean_absolute_error()
