"""Contracts corpus (bad): public array seams without runtime contracts.

The corpus driver places this module under ``repro.sysid`` so the
seam-package scoping of RL401 applies.
"""

import numpy as np


def raw_seam(values: np.ndarray) -> np.ndarray:  # expect: RL401
    """Returns an array with no contract check."""
    return values * 2.0


class PublicModel:
    """Seam class whose methods return arrays."""

    def step(self, state: np.ndarray) -> np.ndarray:  # expect: RL401
        """Method seam without a contract."""
        return state + 1.0
