"""Units-flow corpus (good): nothing in this module may be flagged."""

import numpy as np


def convert(interval_min: float) -> float:
    """Multiplication legitimately changes the unit."""
    interval_s = interval_min * 60.0
    return interval_s


def same_unit(room_temp_c: float, wall_temp_c: float) -> float:
    """Same-suffix arithmetic is fine."""
    return room_temp_c - wall_temp_c


def math_indices(t_k: float, delta: float) -> float:
    """Single-letter stems are math indices (T at step k), not kelvin."""
    return t_k + delta


def dimensionless(timeout_s: float, count: int) -> float:
    """Unknown/dimensionless operands never conflict."""
    return timeout_s + count


def transparent(temps_c: np.ndarray) -> float:
    """numpy reductions preserve the unit without flagging."""
    peak_c = np.nanmax(temps_c)
    return float(peak_c)
