"""Determinism corpus (bad): entropy, wall clocks, set ordering."""

import time
from datetime import datetime

from numpy.random import default_rng


def entropy_seeded() -> float:
    """RL301: unseeded generator pulls OS entropy."""
    rng = default_rng()  # expect: RL301
    return float(rng.random())


def stamp() -> float:
    """RL302: wall-clock reads leak into results."""
    datetime.now()  # expect: RL302
    return time.time()  # expect: RL302


def freeze_order(ids) -> list:
    """RL303: list() over a set bakes in hash order."""
    pending = set(ids)
    return list(pending)  # expect: RL303


def iterate(ids) -> list:
    """RL303: for-loop over a set expression."""
    out = []
    for sensor in {1, 2, 3} - set(ids):  # expect: RL303
        out.append(sensor)
    return out


def waived_iteration(ids) -> list:
    """A suppressed RL303 must not be reported."""
    return list(set(ids))  # repro-lint: disable=RL303
