"""Cross-module corpus: caller passing the wrong unit across modules."""

from repro.xmod_callee import scale_power


def misuse(load_w: float) -> float:
    """RL103 resolved through the project symbol tables."""
    return scale_power(load_w)  # expect: RL103


def correct(load_kw: float) -> float:
    """Matching units pass."""
    return scale_power(load_kw)
