"""Determinism corpus (good): seeded, monotonic, ordered."""

import time

from numpy.random import default_rng


def seeded(seed: int) -> float:
    """Seeded generator is reproducible."""
    return float(default_rng(seed).random())


def durations() -> float:
    """perf_counter measures durations; it never lands in artifacts."""
    started = time.perf_counter()
    return time.perf_counter() - started


def ordered(ids) -> list:
    """sorted() fixes the iteration order."""
    pending = set(ids)
    return sorted(pending)


def insensitive(ids) -> int:
    """len/min/max are order-insensitive set consumers."""
    pending = set(ids)
    return len(pending) + min(pending)
