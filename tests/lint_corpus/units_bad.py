"""Units-flow corpus (bad): every ``# expect:`` line must be flagged."""


def mix_add(timeout_s: float, interval_min: float) -> float:
    """RL101: seconds + minutes."""
    return timeout_s + interval_min  # expect: RL101


def mix_compare(age_s: float, limit_min: float) -> bool:
    """RL101: comparison across units."""
    return age_s > limit_min  # expect: RL101


def mix_aug(total_s: float, extra_min: float) -> float:
    """RL101: augmented assignment across units."""
    total_s += extra_min  # expect: RL101
    return total_s


def flows_through_locals(timeout_s: float) -> float:
    """RL101 through a local rebind: the environment carries the unit."""
    total = timeout_s + 0.5
    budget_min = 3.0
    return total + budget_min  # expect: RL101


def rebind_change(delay_s: float) -> float:
    """RL102: rebind changes the unit."""
    wait_min = delay_s  # expect: RL102
    return wait_min


def rebind_drop(supply_temp_c: float) -> float:
    """RL102: quantity name drops the suffix."""
    temp = supply_temp_c  # expect: RL102
    return temp


def takes_minutes(interval_min: float) -> float:
    """Callee with a minute-suffixed parameter."""
    return interval_min * 60.0


def call_mismatch(timeout_s: float) -> float:
    """RL103: seconds passed to a minutes parameter (positional)."""
    return takes_minutes(timeout_s)  # expect: RL103


def call_mismatch_kw(timeout_s: float) -> float:
    """RL103: seconds passed to a minutes parameter (keyword)."""
    return takes_minutes(interval_min=timeout_s)  # expect: RL103
