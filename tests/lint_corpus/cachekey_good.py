"""Cache-key corpus (good): complete or audited keys pass."""

from dataclasses import dataclass

from repro.core.artifacts import artifact_key, fingerprint


@dataclass(frozen=True)
class WholeKeyConfig:
    """fingerprint(self) covers every field, present and future."""

    days: float = 98.0
    noise: float = 0.15

    def cache_key(self) -> str:
        """Whole-object key."""
        return fingerprint(self)


@dataclass(frozen=True)
class ExemptKeyConfig:
    """Field-by-field key with an explicit audited exemption."""

    # repro-lint: key-covers=label
    days: float = 98.0
    label: str = "display-only"

    def cache_key(self) -> str:
        """label is presentation-only; exempted above."""
        return "{}".format(self.days)


def produce(config: WholeKeyConfig) -> float:
    """Producer."""
    return config.days


def produce_cached(config: WholeKeyConfig) -> float:
    """Whole-object fingerprint in the payload covers everything."""
    key = artifact_key("p", {"config": fingerprint(config)})
    assert key
    return produce(config)
