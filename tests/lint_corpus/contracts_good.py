"""Contracts corpus (good): decorated, checked, private, abstract, or waived."""

import abc

import numpy as np

from repro.contracts import check_shapes, ensure_finite


@check_shapes(values="n p", ret="n p")
def decorated_seam(values: np.ndarray) -> np.ndarray:
    """Contract via the check_shapes decorator."""
    return values * 2.0


def checked_seam(values: np.ndarray) -> np.ndarray:
    """Contract via ensure_finite on the result."""
    return ensure_finite(values * 2.0, "values")


def _helper(values: np.ndarray) -> np.ndarray:
    """Private helpers are exempt; contracts guard the public seams."""
    return values


def waived_seam(values: np.ndarray) -> np.ndarray:  # repro-lint: disable=RL401
    """Explicitly waived seam."""
    return values


class AbstractSeam(abc.ABC):
    """Abstract declarations have no body to check."""

    @abc.abstractmethod
    def step(self, state: np.ndarray) -> np.ndarray:
        """Implementations carry the contract."""
