"""Cache-key corpus (bad): incomplete keys must be flagged."""

from dataclasses import dataclass

from repro.core.artifacts import artifact_key, fingerprint


@dataclass(frozen=True)
class PartialKeyConfig:
    """RL201: ``noise`` never reaches the hand-written key."""

    days: float = 98.0
    seed: int = 0
    noise: float = 0.15  # expect: RL201

    def cache_key(self) -> str:
        """Hand-written tuple that silently omits a field."""
        return "{}|{}".format(self.days, self.seed)


def simulate(config: PartialKeyConfig, scale: float) -> float:
    """Underlying producer: consumes config *and* scale."""
    return config.days * scale


def simulate_cached(config: PartialKeyConfig, scale: float) -> float:  # expect: RL202
    """RL202: ``scale`` shapes the result but never enters the key."""
    key = artifact_key("sim", {"config": fingerprint(config)})
    assert key
    return simulate(config, scale)


def analyze(config: PartialKeyConfig) -> float:
    """Consumes days *and* noise."""
    return config.days * config.noise


def analyze_cached(config: PartialKeyConfig) -> float:  # expect: RL202
    """RL202: payload keys only config.days; analyze() also reads noise."""
    key = artifact_key("an", {"days": config.days})
    assert key
    return analyze(config)


def simulate_trace(config: PartialKeyConfig, engine: str) -> float:
    """Underlying producer: the engine changes how the trace is built."""
    return config.days if engine == "loop" else config.days * 2.0


def simulate_trace_cached(config: PartialKeyConfig, engine: str) -> float:  # expect: RL202
    """RL202: the engine-blind key — a warm cache silently serves one
    engine's output for another's explicit request (the bug class fixed
    in ``repro.data.synth.generate``)."""
    key = artifact_key("trace", {"config": fingerprint(config)})
    assert key
    return simulate_trace(config, engine)
