"""Cross-module corpus: callee with unit-suffixed parameters."""


def scale_power(load_kw: float, factor: float = 1.0) -> float:
    """kW-suffixed parameter, resolved from another module."""
    return load_kw * factor
