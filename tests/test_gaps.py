"""Tests for gap detection and segmentation."""

import numpy as np
import pytest

from repro.data.gaps import (
    Segment,
    coverage,
    find_segments,
    gap_statistics,
    mask_gaps,
    valid_mask,
)
from repro.errors import DataError


class TestSegment:
    def test_length_and_indices(self):
        segment = Segment(3, 7)
        assert len(segment) == 4
        np.testing.assert_array_equal(segment.indices(), [3, 4, 5, 6])

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            Segment(5, 5)

    def test_intersect(self):
        segment = Segment(3, 9)
        assert segment.intersect(5, 20) == Segment(5, 9)
        assert segment.intersect(0, 3) is None
        assert segment.intersect(9, 12) is None


class TestValidMask:
    def test_all_columns_must_be_finite(self):
        matrix = np.array([[1.0, 2.0], [np.nan, 2.0], [1.0, np.nan], [3.0, 4.0]])
        np.testing.assert_array_equal(valid_mask(matrix), [True, False, False, True])

    def test_one_dimensional(self):
        np.testing.assert_array_equal(valid_mask(np.array([1.0, np.nan])), [True, False])

    def test_rejects_3d(self):
        with pytest.raises(DataError):
            valid_mask(np.zeros((2, 2, 2)))


class TestFindSegments:
    def test_splits_on_nan(self):
        data = np.array([1, 2, np.nan, 4, 5, 6.0])
        segments = find_segments(data, min_length=2)
        assert segments == [Segment(0, 2), Segment(3, 6)]

    def test_min_length_filters(self):
        data = np.array([1.0, np.nan, 3.0, 4.0, 5.0])
        assert find_segments(data, min_length=3) == [Segment(2, 5)]

    def test_extra_mask_respected(self):
        data = np.ones(6)
        mask = np.array([True, True, False, True, True, True])
        assert find_segments(data, min_length=2, mask=mask) == [Segment(0, 2), Segment(3, 6)]

    def test_mask_shape_checked(self):
        with pytest.raises(DataError):
            find_segments(np.ones(4), mask=np.ones(3, dtype=bool))

    def test_all_invalid(self):
        assert find_segments(np.full(5, np.nan)) == []

    def test_min_length_validation(self):
        with pytest.raises(DataError):
            find_segments(np.ones(3), min_length=0)


class TestMaskGapsAndCoverage:
    def test_mask_gaps(self):
        data = np.arange(6.0)
        masked = mask_gaps(data, [Segment(1, 3)])
        assert np.isnan(masked[0]) and np.isnan(masked[3:]).all()
        np.testing.assert_array_equal(masked[1:3], [1, 2])

    def test_mask_gaps_does_not_mutate(self):
        data = np.arange(4.0)
        mask_gaps(data, [])
        np.testing.assert_array_equal(data, [0, 1, 2, 3])

    def test_coverage(self):
        assert coverage([Segment(0, 5), Segment(10, 15)], 20) == pytest.approx(0.5)
        assert coverage([], 10) == 0.0
        assert coverage([Segment(0, 1)], 0) == 0.0


class TestGapStatistics:
    def test_fragmentation_summary(self):
        data = np.ones(20)
        data[5:8] = np.nan  # a 3-tick gap
        data[15] = np.nan  # a 1-tick gap
        stats = gap_statistics(data, min_length=2)
        assert stats.n_segments == 3
        assert stats.n_ticks == 20
        assert stats.coverage == pytest.approx(16 / 20)
        assert stats.longest_segment == 7
        assert stats.longest_gap == 3

    def test_all_gaps(self):
        stats = gap_statistics(np.full(10, np.nan))
        assert stats.n_segments == 0
        assert stats.coverage == 0.0
        assert stats.longest_segment == 0
        assert stats.longest_gap == 10

    def test_nan_burst_absorbed_not_fatal(self):
        """Injected NaN bursts fragment the trace; segmentation absorbs
        them instead of breaking (the degraded-pipeline guarantee)."""
        data = np.ones((100, 2))
        data[30:45, 0] = np.nan
        data[70:72, 1] = np.nan
        stats = gap_statistics(data)
        assert stats.n_segments == 3
        assert stats.coverage == pytest.approx((30 + 25 + 28) / 100)
        assert stats.longest_gap == 15
