"""Property-based tests for the extension components."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cluster.stability import adjusted_rand_index
from repro.simulation.humidity import (
    MoistureBalance,
    humidity_ratio_from_rh,
    relative_humidity,
)
from repro.sysid.arx import ARXModel

small_floats = st.floats(min_value=-0.4, max_value=0.4, allow_nan=False)


class TestARXProperties:
    @given(
        seed=st.integers(min_value=0, max_value=500),
        order=st.integers(min_value=1, max_value=4),
        steps=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=40, deadline=None)
    def test_simulation_matches_companion_recursion(self, seed, order, steps):
        """Simulating the ARX model equals iterating its block-companion
        matrix on the stacked lag state."""
        gen = np.random.default_rng(seed)
        p = 2
        lags = tuple(0.3 / order * gen.uniform(-1, 1, size=(p, p)) for _ in range(order))
        model = ARXModel(lag_matrices=lags, B=np.zeros((p, 1)))
        history = gen.uniform(18, 24, size=(order, p))
        out = model.simulate(history, np.zeros((steps, 1)))

        companion = model.companion_matrix()
        # Stacked state: [T(k), T(k-1), ..., T(k-order+1)].
        state = np.concatenate([history[-(i + 1)] for i in range(order)])
        for k in range(steps):
            state = companion @ state
            np.testing.assert_allclose(state[:p], out[k], atol=1e-9)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=30)
    def test_stable_companion_decays(self, seed):
        gen = np.random.default_rng(seed)
        p = 2
        lags = (0.3 * gen.uniform(-1, 1, (p, p)), 0.2 * gen.uniform(-1, 1, (p, p)))
        model = ARXModel(lag_matrices=lags, B=np.zeros((p, 1)))
        assume(model.spectral_radius() < 0.95)
        out = model.simulate(np.full((2, p), 5.0), np.zeros((200, 1)))
        assert np.abs(out[-1]).max() < 1.0


class TestMoistureProperties:
    @given(
        occupants=st.floats(min_value=0.0, max_value=90.0),
        flow_m3s=st.floats(min_value=0.0, max_value=3.2),
        discharge=st.floats(min_value=5.0, max_value=30.0),
        ambient=st.floats(min_value=-20.0, max_value=35.0),
        steps=st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=50, deadline=None)
    def test_ratio_stays_physical(self, occupants, flow_m3s, discharge, ambient, steps):
        balance = MoistureBalance(room_volume=1920.0)
        for _ in range(steps):
            ratio = balance.step(
                60.0,
                occupants=occupants,
                supply_flow_m3s=flow_m3s,
                fresh_fraction=0.3,
                discharge_temp_c=discharge,
                ambient_temp_c=ambient,
            )
        assert 0.0 <= ratio < 0.05  # well below liquid water

    @given(
        rh=st.floats(min_value=0.0, max_value=100.0),
        temp_c=st.floats(min_value=0.0, max_value=35.0),
    )
    def test_rh_roundtrip_property(self, rh, temp_c):
        ratio = humidity_ratio_from_rh(rh, temp_c)
        assert relative_humidity(ratio, temp_c) == pytest.approx(rh, abs=1e-6)


class TestARIProperties:
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=60)
    )
    def test_self_agreement_is_one(self, labels):
        assume(len(set(labels)) >= 1)
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(
        labels=st.lists(st.integers(min_value=0, max_value=4), min_size=4, max_size=60),
        permutation_seed=st.integers(min_value=0, max_value=100),
    )
    def test_invariant_to_label_renaming(self, labels, permutation_seed):
        gen = np.random.default_rng(permutation_seed)
        mapping = gen.permutation(5)
        renamed = [int(mapping[v]) for v in labels]
        assert adjusted_rand_index(labels, renamed) == pytest.approx(1.0)

    @given(
        a=st.lists(st.integers(min_value=0, max_value=3), min_size=6, max_size=40),
        b=st.lists(st.integers(min_value=0, max_value=3), min_size=6, max_size=40),
    )
    def test_bounded_above_by_one(self, a, b):
        n = min(len(a), len(b))
        score = adjusted_rand_index(a[:n], b[:n])
        assert score <= 1.0 + 1e-12
