"""Tests for the persistent artifact cache (:mod:`repro.core.artifacts`)."""

from __future__ import annotations

import concurrent.futures
import pickle

import numpy as np
import pytest

from repro.core.artifacts import (
    ArtifactCache,
    array_digest,
    artifact_key,
    cache_enabled,
    cache_root,
    default_cache,
    fingerprint,
)
from repro.data.synth import (
    SIM_CHUNK_KIND,
    SynthConfig,
    SynthOutput,
    clear_cache,
    generate,
    generate_fleet,
)
from repro.simulation.fleet import BuildingSpec
from repro.simulation.simulator import AuditoriumSimulator, SimulationConfig

TINY_DAYS = 2.0


def tiny_config(days: float = TINY_DAYS, seed: int = 1234) -> SynthConfig:
    return SynthConfig(simulation=SimulationConfig(days=days, seed=seed), seed=seed)


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint(tiny_config()) == fingerprint(tiny_config())

    def test_sensitive_to_every_simulation_field(self):
        base = fingerprint(tiny_config())
        assert fingerprint(tiny_config(seed=99)) != base
        assert fingerprint(tiny_config(days=3.0)) != base
        # Fields the old hand-written tuple key silently dropped.
        drafty = SynthConfig(
            simulation=SimulationConfig(days=TINY_DAYS, seed=1234, thermostat_draft=0.5),
            seed=1234,
        )
        assert fingerprint(drafty) != base

    def test_canonicalizes_containers(self):
        assert fingerprint({"b": 2, "a": 1}) == fingerprint({"a": 1, "b": 2})
        assert fingerprint([1, 2.5, "x"]) == fingerprint((1, 2.5, "x"))
        assert fingerprint(np.float64(1.5)) == fingerprint(1.5)

    def test_key_includes_version(self):
        config = tiny_config()
        assert artifact_key("synth-output", config) != artifact_key(
            "synth-output", config, version="0.0.0-test"
        )
        assert artifact_key("synth-output", config) != artifact_key("other", config)


class TestArrayDigest:
    def test_stable_across_calls(self):
        arr = np.arange(12.0).reshape(3, 4)
        assert array_digest(arr) == array_digest(arr.copy())

    def test_sensitive_to_values_shape_and_dtype(self):
        arr = np.arange(12.0).reshape(3, 4)
        base = array_digest(arr)
        bumped = arr.copy()
        bumped[0, 0] += 1e-12
        assert array_digest(bumped) != base
        assert array_digest(arr.reshape(4, 3)) != base
        assert array_digest(arr.astype(np.float32)) != base

    def test_multiple_arrays_and_order(self):
        a, b = np.zeros(3), np.ones(3)
        assert array_digest(a, b) != array_digest(b, a)
        assert array_digest(a, b) != array_digest(a)

    def test_non_contiguous_views_hash_like_their_copy(self):
        arr = np.arange(20.0).reshape(4, 5)
        view = arr[:, ::2]
        assert array_digest(view) == array_digest(view.copy())


class TestCachedFits:
    """Satellite: identified models and clusterings read through the cache."""

    def test_identify_cached_matches_identify(self, monkeypatch, tmp_path):
        from tests.conftest import make_linear_dataset
        from repro.sysid.identify import (
            IdentificationOptions,
            identify,
            identify_cached,
        )

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        dataset = make_linear_dataset(n_days=3.0, noise=0.01)
        options = IdentificationOptions(order=2)
        plain = identify(dataset, options)
        first = identify_cached(dataset, options)  # populates the cache
        second = identify_cached(dataset, options)  # reads it back
        for model in (first, second):
            np.testing.assert_array_equal(model.A1, plain.A1)
            np.testing.assert_array_equal(model.A2, plain.A2)
            np.testing.assert_array_equal(model.B, plain.B)
        assert any(tmp_path.rglob("*.pkl"))

    def test_identify_cached_keys_on_the_data(self, monkeypatch, tmp_path):
        from tests.conftest import make_linear_dataset
        from repro.sysid.identify import identify_cached

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = identify_cached(make_linear_dataset(n_days=3.0, noise=0.01, seed=1))
        b = identify_cached(make_linear_dataset(n_days=3.0, noise=0.01, seed=2))
        assert not np.array_equal(a.A1, b.A1)

    def test_cluster_sensors_cached_matches_direct(self, monkeypatch, tmp_path, week_dataset):
        from repro.cluster import cluster_sensors, cluster_sensors_cached

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        direct = cluster_sensors(week_dataset, method="correlation", k=2)
        first = cluster_sensors_cached(week_dataset, method="correlation", k=2)
        second = cluster_sensors_cached(week_dataset, method="correlation", k=2)
        np.testing.assert_array_equal(first.labels, direct.labels)
        np.testing.assert_array_equal(second.labels, direct.labels)


class TestArtifactCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        assert cache.load("ab" * 32) is None
        path = cache.store("ab" * 32, {"x": np.arange(3)})
        assert path is not None and path.exists()
        loaded = cache.load("ab" * 32)
        assert np.array_equal(loaded["x"], np.arange(3))

    def test_corrupt_file_is_a_miss_and_self_heals(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        key = "cd" * 32
        cache.store(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"this is not a pickle")
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()
        # A fresh store after the corruption works again.
        cache.store(key, [4, 5])
        assert cache.load(key) == [4, 5]

    def test_truncated_pickle_is_a_miss(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        key = "ef" * 32
        cache.store(key, list(range(100)))
        payload = cache.path_for(key).read_bytes()
        cache.path_for(key).write_bytes(payload[: len(payload) // 2])
        assert cache.load(key) is None

    def test_disabled_cache_stores_and_loads_nothing(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        assert cache.store("aa" * 32, {"v": 1}) is None
        assert not any(tmp_path.iterdir())
        assert cache.load("aa" * 32) is None

    def test_env_switch_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "off")
        assert not cache_enabled()
        assert not default_cache().enabled
        monkeypatch.setenv("REPRO_CACHE", "")
        assert cache_enabled()

    def test_env_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert cache_root() == tmp_path / "elsewhere"
        assert default_cache().root == tmp_path / "elsewhere"

    def test_concurrent_readers(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        key = "ff" * 32
        value = {"trace": np.random.default_rng(0).random((500, 30))}
        cache.store(key, value)
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda _: cache.load(key), range(32)))
        assert all(np.array_equal(r["trace"], value["trace"]) for r in results)

    def test_concurrent_writers_race_benignly(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        key = "bb" * 32
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda i: cache.store(key, {"payload": i}), range(16)))
        loaded = cache.load(key)
        assert loaded is not None and 0 <= loaded["payload"] < 16
        # No temp files left behind.
        leftovers = [p for p in cache.path_for(key).parent.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestSynthReadThrough:
    def test_generate_round_trip_is_byte_identical(self, monkeypatch, tmp_path):
        """A disk-cached trace equals a fresh generation with the same seed."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = tiny_config()
        fresh = generate(config, use_cache=False)
        cached_path = default_cache().path_for(config.artifact_key())
        assert not cached_path.exists()  # use_cache=False must not write

        generate(config)  # populates disk
        assert cached_path.exists()
        clear_cache()  # drop the in-process layer to force the disk read
        reloaded = generate(config)

        for name in ("full_dataset", "analysis_dataset"):
            fresh_ds = getattr(fresh, name)
            reloaded_ds = getattr(reloaded, name)
            assert fresh_ds.sensor_ids == reloaded_ds.sensor_ids
            assert np.array_equal(
                fresh_ds.temperatures, reloaded_ds.temperatures, equal_nan=True
            )
            assert np.array_equal(fresh_ds.inputs, reloaded_ds.inputs, equal_nan=True)
        assert np.array_equal(
            fresh.simulation.zone_temps, reloaded.simulation.zone_temps
        )
        assert pickle.dumps(fresh.simulation.zone_temps) == pickle.dumps(
            reloaded.simulation.zone_temps
        )

    def test_cache_off_bypasses_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE", "off")
        clear_cache()
        config = tiny_config(seed=4321)
        output = generate(config)
        assert isinstance(output, SynthOutput)
        assert not any(tmp_path.rglob("*.pkl"))

    def test_version_bump_invalidates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        generate(config)
        old_path = default_cache().path_for(config.artifact_key())
        assert old_path.exists()
        monkeypatch.setattr("repro.version.__version__", "999.0.0")
        assert default_cache().path_for(config.artifact_key()) != old_path

    def test_corrupt_synth_artifact_regenerates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        first = generate(config)
        path = default_cache().path_for(config.artifact_key())
        path.write_bytes(b"\x80corrupt")
        clear_cache()
        regenerated = generate(config)
        assert np.array_equal(
            first.analysis_dataset.temperatures,
            regenerated.analysis_dataset.temperatures,
            equal_nan=True,
        )
        assert path.exists()  # regenerated artifact was re-stored


class TestEngineKeying:
    """The cache key must include the engine (the engine-blind bug)."""

    def test_loop_request_never_served_from_kernel_cache(self, monkeypatch, tmp_path):
        """A kernel-warmed cache must still run ``run_loop`` when asked to."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        generate(config)  # warm both cache layers with the kernel engine

        calls = {"loop": 0}
        original = AuditoriumSimulator.run_loop

        def counting_run_loop(self):
            calls["loop"] += 1
            return original(self)

        monkeypatch.setattr(AuditoriumSimulator, "run_loop", counting_run_loop)
        loop_output = generate(config, engine="loop")
        assert calls["loop"] == 1, "loop request was served from the kernel cache"
        # The engines are bit-identical by contract, so the *data* agrees —
        # only the provenance differs.
        kernel_output = generate(config)
        assert np.array_equal(
            loop_output.simulation.zone_temps, kernel_output.simulation.zone_temps
        )

    def test_engine_keys_are_distinct(self):
        config = tiny_config()
        assert config.cache_key("kernel") != config.cache_key("loop")
        assert config.artifact_key("kernel") != config.artifact_key("loop")

    def test_warm_loop_cache_reused_for_loop(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        generate(config, engine="loop")
        calls = {"loop": 0}
        original = AuditoriumSimulator.run_loop

        def counting_run_loop(self):
            calls["loop"] += 1
            return original(self)

        monkeypatch.setattr(AuditoriumSimulator, "run_loop", counting_run_loop)
        generate(config, engine="loop")  # in-process hit
        clear_cache()
        generate(config, engine="loop")  # disk hit
        assert calls["loop"] == 0


class TestChunkResume:
    """Resume semantics of the streamed chunk series."""

    def test_mismatched_chunk_steps_resume_is_byte_identical(self, monkeypatch, tmp_path):
        """The manifest's slab size wins: a 7-day-slab series satisfies a
        caller asking for 1-day slabs, byte for byte."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        day_steps = int(round(86400.0 / config.simulation.dt))
        first = generate(config, chunk_steps=7 * day_steps)
        clear_cache()
        # Drop the assembled output so generate() must resume from chunks.
        default_cache().path_for(config.artifact_key()).unlink()
        resumed = generate(config, chunk_steps=day_steps)
        assert pickle.dumps(first.simulation.zone_temps) == pickle.dumps(
            resumed.simulation.zone_temps
        )
        for field in ("mass_temps", "co2", "humidity_ratio", "thermostat_readings"):
            assert np.array_equal(
                getattr(first.simulation, field), getattr(resumed.simulation, field)
            )

    def test_poisoned_sealed_series_raises(self, monkeypatch, tmp_path):
        """A sealed series with non-finite data is a defect, not a miss."""
        from repro.core.artifacts import chunk_key, load_chunk_series
        from repro.errors import ContractError

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        generate(config)
        default_cache().path_for(config.artifact_key()).unlink()
        sim_cfg = config.simulation
        size = int(round(7 * 86400.0 / sim_cfg.dt))
        chunk = load_chunk_series(default_cache(), SIM_CHUNK_KIND, sim_cfg)[0]
        chunk.zone_temps[0, 0] = np.nan
        default_cache().store(chunk_key(SIM_CHUNK_KIND, sim_cfg, size, 0), chunk)
        clear_cache()
        with pytest.raises(ContractError):
            generate(config)

    def test_foreign_typed_chunks_regenerate(self, monkeypatch, tmp_path):
        """Structurally wrong cached chunks are a miss — regenerate."""
        from repro.core.artifacts import chunk_key

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config()
        first = generate(config)
        default_cache().path_for(config.artifact_key()).unlink()
        sim_cfg = config.simulation
        size = int(round(7 * 86400.0 / sim_cfg.dt))
        default_cache().store(
            chunk_key(SIM_CHUNK_KIND, sim_cfg, size, 0), {"not": "a chunk"}
        )
        clear_cache()
        regenerated = generate(config)
        assert np.array_equal(
            first.simulation.zone_temps, regenerated.simulation.zone_temps
        )


class TestFleetCache:
    """Fleet chunk series interoperate with the solo cache."""

    def test_solo_generate_resumes_from_fleet_trace(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config(seed=555)
        spec = BuildingSpec.paper_default(simulation=config.simulation, name="paper")
        fleet = generate_fleet(specs=(spec,))

        integrated = {"count": 0}
        original = AuditoriumSimulator.iter_chunks

        def counting_iter_chunks(self, chunk_steps=None):
            integrated["count"] += 1
            return original(self, chunk_steps)

        monkeypatch.setattr(AuditoriumSimulator, "iter_chunks", counting_iter_chunks)
        solo = generate(config)
        assert integrated["count"] == 0, "solo generate re-integrated a fleet-cached trace"
        assert pickle.dumps(solo.simulation.zone_temps) == pickle.dumps(
            fleet.results[0].zone_temps
        )

    def test_fleet_resumes_its_own_series(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        config = tiny_config(seed=556)
        spec = BuildingSpec.paper_default(simulation=config.simulation, name="paper")
        first = generate_fleet(specs=(spec,))
        again = generate_fleet(specs=(spec,))
        assert pickle.dumps(first.results[0].zone_temps) == pickle.dumps(
            again.results[0].zone_temps
        )


@pytest.mark.parametrize("payload", [None, 42, "text"])
def test_non_synth_payloads_round_trip(tmp_path, payload):
    cache = ArtifactCache(root=tmp_path, enabled=True)
    key = artifact_key("misc", {"payload": payload})
    cache.store(key, payload)
    assert cache.load(key) == payload
