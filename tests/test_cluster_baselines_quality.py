"""Tests for baseline clusterers and cluster-quality metrics."""

import numpy as np
import pytest

from repro.cluster.baselines import kmeans_traces, single_linkage
from repro.cluster.quality import cluster_mean_trace, cluster_quality, cluster_mean_temperatures
from repro.cluster.spectral import ClusteringResult
from repro.data.dataset import AuditoriumDataset, InputChannels
from repro.data.timeseries import TimeAxis
from repro.errors import ClusteringError
from tests.test_cluster import two_group_traces
from tests.conftest import TEST_EPOCH


def traces_dataset(traces):
    count = traces.shape[0]
    axis = TimeAxis(epoch=TEST_EPOCH, period=900.0, count=count)
    channels = InputChannels()
    return AuditoriumDataset(
        axis=axis,
        sensor_ids=tuple(range(1, traces.shape[1] + 1)),
        temperatures=traces,
        inputs=np.ones((count, channels.n_channels)),
        channels=channels,
    )


def make_clustering(dataset, labels, k):
    return ClusteringResult(
        sensor_ids=dataset.sensor_ids,
        labels=np.asarray(labels),
        k=k,
        method="correlation",
        eigenvalues=np.arange(float(len(dataset.sensor_ids))),
        eigengaps=np.ones(len(dataset.sensor_ids) - 1),
        weights=np.zeros((len(dataset.sensor_ids),) * 2),
    )


class TestBaselines:
    def test_kmeans_traces_separates_levels(self):
        traces = two_group_traces(gap=5.0)
        labels = kmeans_traces(traces, 2, seed=0)
        assert len(set(labels[:5])) == 1 and len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_kmeans_traces_handles_nans(self):
        traces = two_group_traces(gap=5.0)
        traces[::7, 0] = np.nan
        labels = kmeans_traces(traces, 2, seed=0)
        assert labels.shape == (10,)

    def test_kmeans_traces_all_nan_column_rejected(self):
        traces = two_group_traces()
        traces[:, 0] = np.nan
        with pytest.raises(ClusteringError):
            kmeans_traces(traces, 2, seed=0)

    def test_single_linkage_separates_levels(self):
        traces = two_group_traces(gap=5.0)
        labels = single_linkage(traces, 2)
        assert len(set(labels[:5])) == 1 and len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_single_linkage_k_equals_n(self):
        traces = two_group_traces()
        labels = single_linkage(traces, traces.shape[1])
        assert len(set(labels)) == traces.shape[1]

    def test_single_linkage_k_validation(self):
        with pytest.raises(ClusteringError):
            single_linkage(two_group_traces(), 0)


class TestClusteringResult:
    def test_members_and_lookup(self):
        dataset = traces_dataset(two_group_traces())
        clustering = make_clustering(dataset, [0] * 5 + [1] * 5, 2)
        assert clustering.members(0) == [1, 2, 3, 4, 5]
        assert clustering.label_of(7) == 1
        assert clustering.sizes() == [5, 5]
        with pytest.raises(ClusteringError):
            clustering.members(5)
        with pytest.raises(ClusteringError):
            clustering.label_of(99)


class TestClusterQuality:
    def test_good_vs_bad_clustering(self):
        traces = two_group_traces(gap=3.0)
        dataset = traces_dataset(traces)
        good = make_clustering(dataset, [0] * 5 + [1] * 5, 2)
        bad = make_clustering(dataset, [0, 1] * 5, 2)
        q_good = cluster_quality(good, dataset)
        q_bad = cluster_quality(bad, dataset)
        good_p95 = np.percentile(q_good.max_differences[0], 95)
        bad_p95 = np.percentile(q_bad.max_differences[0], 95)
        assert good_p95 < bad_p95
        assert q_good.mean_within_correlation[0] > q_bad.mean_within_correlation[0]

    def test_singleton_cluster(self):
        traces = two_group_traces()
        dataset = traces_dataset(traces)
        clustering = make_clustering(dataset, [0] + [1] * 9, 2)
        quality = cluster_quality(clustering, dataset)
        assert quality.mean_within_correlation[0] == 1.0

    def test_fraction_below(self):
        traces = two_group_traces(gap=3.0)
        dataset = traces_dataset(traces)
        clustering = make_clustering(dataset, [0] * 5 + [1] * 5, 2)
        quality = cluster_quality(clustering, dataset)
        assert 0.0 <= quality.fraction_below(1.0, 0) <= 1.0

    def test_difference_cdf(self):
        traces = two_group_traces()
        dataset = traces_dataset(traces)
        clustering = make_clustering(dataset, [0] * 5 + [1] * 5, 2)
        quality = cluster_quality(clustering, dataset)
        values, f = quality.difference_cdf(0)
        assert (np.diff(f) > 0).all()
        overall_values, _ = quality.difference_cdf(None)
        assert overall_values.max() >= values.max()


class TestClusterMeans:
    def test_mean_temperatures_reflect_gap(self):
        traces = two_group_traces(gap=3.0)
        dataset = traces_dataset(traces)
        clustering = make_clustering(dataset, [0] * 5 + [1] * 5, 2)
        means = cluster_mean_temperatures(clustering, dataset)
        assert means[1] - means[0] == pytest.approx(3.0, abs=0.2)

    def test_mean_trace_nan_aware(self):
        traces = two_group_traces()
        traces[0, 0] = np.nan
        dataset = traces_dataset(traces)
        trace = cluster_mean_trace(dataset, [1, 2])
        assert np.isfinite(trace[0])  # sensor 2 still has data

    def test_mean_trace_empty_members(self):
        dataset = traces_dataset(two_group_traces())
        with pytest.raises(ClusteringError):
            cluster_mean_trace(dataset, [])
