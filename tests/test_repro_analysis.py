"""Tests for the whole-program analysis pack (tools/repro_lint/analysis).

The heart of the suite is the corpus under ``tests/lint_corpus``: each
``*_bad.py`` file marks every line that must be flagged with an inline
``# expect: <CODE>`` comment, and each ``*_good.py`` file must produce
no findings at all.  The driver loads the whole corpus as one project
(so cross-module resolution is exercised) and compares the finding set
``(file, line, code)`` exactly against the markers.
"""

import json
import re
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro_lint.analysis import analyze_project, analyzer_codes
from repro_lint.analysis.baseline import (
    baseline_entry,
    diff_against_baseline,
    load_baseline,
    write_baseline,
)
from repro_lint.analysis.dataflow import suffix_of
from repro_lint.analysis.project import Project
from repro_lint.engine import Violation

REPO_ROOT = Path(__file__).resolve().parents[1]
CORPUS = Path(__file__).resolve().parent / "lint_corpus"

_EXPECT = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def corpus_destination(name):
    """Relative placement of a corpus file inside the fake repro package.

    The contracts corpus must land in a seam package (``repro.sysid``)
    for RL401's scoping to apply; everything else sits at package root.
    """
    if name.startswith("contracts_"):
        return Path("sysid") / name
    return Path(name)


@pytest.fixture(scope="module")
def corpus_project(tmp_path_factory):
    root = tmp_path_factory.mktemp("corpus")
    for src_file in sorted(CORPUS.glob("*.py")):
        dest = root / "src" / "repro" / corpus_destination(src_file.name)
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(src_file.read_text(encoding="utf-8"), encoding="utf-8")
    project, errors = Project.load([root / "src"])
    assert errors == []
    return root, project


def expected_markers():
    expected = set()
    for src_file in sorted(CORPUS.glob("*.py")):
        rel = corpus_destination(src_file.name).as_posix()
        for lineno, line in enumerate(
            src_file.read_text(encoding="utf-8").splitlines(), 1
        ):
            match = _EXPECT.search(line)
            if match:
                for code in match.group(1).replace(",", " ").split():
                    expected.add((rel, lineno, code))
    return expected


def relative_findings(root, violations):
    base = root / "src" / "repro"
    return {
        (Path(v.path).relative_to(base).as_posix(), v.line, v.code)
        for v in violations
    }


# ---------------------------------------------------------------------------
# Corpus: exact codes and lines
# ---------------------------------------------------------------------------


def test_corpus_markers_exist():
    expected = expected_markers()
    assert expected, "corpus lost its # expect markers"
    assert {code for _, _, code in expected} == {
        "RL101",
        "RL102",
        "RL103",
        "RL201",
        "RL202",
        "RL301",
        "RL302",
        "RL303",
        "RL401",
    }


def test_corpus_findings_match_markers_exactly(corpus_project):
    root, project = corpus_project
    actual = relative_findings(root, analyze_project(project))
    assert actual == expected_markers()


def test_good_corpus_files_are_clean(corpus_project):
    root, project = corpus_project
    actual = relative_findings(root, analyze_project(project))
    flagged_files = {path for path, _, _ in actual}
    for src_file in CORPUS.glob("*_good.py"):
        rel = corpus_destination(src_file.name).as_posix()
        assert rel not in flagged_files


def test_inline_waivers_silence_analysis_codes(corpus_project):
    # determinism_bad.py:waived_iteration and contracts_good.py:waived_seam
    # carry `# repro-lint: disable=...` comments; neither may be reported.
    root, project = corpus_project
    actual = relative_findings(root, analyze_project(project))
    waived = {path for path, _, _ in actual if "waived" in path}
    assert not waived
    for path, lineno, _ in actual:
        src = CORPUS / Path(path).name
        line = src.read_text(encoding="utf-8").splitlines()[lineno - 1]
        assert "disable=" not in line


def test_every_finding_carries_a_fix_hint(corpus_project):
    root, project = corpus_project
    for violation in analyze_project(project):
        assert violation.hint, f"{violation.code} at {violation.path}:{violation.line}"


def test_specific_hints(corpus_project):
    root, project = corpus_project
    by_code = {}
    for v in analyze_project(project):
        by_code.setdefault(v.code, []).append(v)
    (rl201,) = by_code["RL201"]
    assert "key-covers=noise" in rl201.hint
    assert "noise" in rl201.message and "PartialKeyConfig" in rl201.message
    scale_gap = [v for v in by_code["RL202"] if "'scale'" in v.message]
    assert scale_gap and "absent from the artifact_key payload" in scale_gap[0].message
    proj_gap = [v for v in by_code["RL202"] if "noise" in v.message]
    assert proj_gap and "key-covers=config.noise" in proj_gap[0].hint
    assert any(
        "sorted" in v.hint for v in by_code["RL303"]
    ), "RL303 hints must point at sorted()"


def test_cross_module_unit_mismatch_resolved(corpus_project):
    root, project = corpus_project
    findings = [
        v
        for v in analyze_project(project)
        if v.code == "RL103" and Path(v.path).name == "xmod_caller.py"
    ]
    (finding,) = findings
    assert "scale_power" in finding.message
    assert "_kw" in finding.message and "_w" in finding.message


def test_select_and_ignore_filter_analyzers(corpus_project):
    root, project = corpus_project
    only_units = analyze_project(project, select={"RL101"})
    assert {v.code for v in only_units} == {"RL101"}
    no_contracts = analyze_project(project, ignore={"RL401"})
    assert "RL401" not in {v.code for v in no_contracts}


# ---------------------------------------------------------------------------
# Unit-suffix inference basics
# ---------------------------------------------------------------------------


def test_suffix_of_longest_match_and_stems():
    assert suffix_of("supply_temp_c") == "_c"
    assert suffix_of("flow_m3s") == "_m3s"
    assert suffix_of("energy_kwh") == "_kwh"
    assert suffix_of("t_k") is None  # math index, not kelvin
    assert suffix_of("u_s") is None
    assert suffix_of("plain") is None


def test_analyzer_codes_registry():
    codes = analyzer_codes()
    assert set(codes) == {
        "RL101",
        "RL102",
        "RL103",
        "RL201",
        "RL202",
        "RL301",
        "RL302",
        "RL303",
        "RL401",
    }
    for summary in codes.values():
        assert summary


# ---------------------------------------------------------------------------
# Baseline: round trip, diff, ratchet
# ---------------------------------------------------------------------------


def _violation(path="src/repro/x.py", line=3, code="RL301", message="m"):
    return Violation(path=path, line=line, col=1, code=code, message=message)


def test_baseline_round_trip(tmp_path):
    findings = [_violation(line=3), _violation(line=9, code="RL302", message="n")]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, findings)
    loaded = load_baseline(baseline_path)
    assert loaded == Counter(baseline_entry(v) for v in findings)
    new, stale = diff_against_baseline(findings, loaded)
    assert new == [] and stale == []


def test_baseline_diff_detects_new_and_stale(tmp_path):
    old = [_violation(message="kept"), _violation(code="RL302", message="fixed")]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, old)
    now = [_violation(message="kept"), _violation(code="RL303", message="fresh")]
    new, stale = diff_against_baseline(now, load_baseline(baseline_path))
    assert [v.message for v in new] == ["fresh"]
    assert [entry[2] for entry in stale] == ["fixed"]


def test_baseline_entries_ignore_line_numbers(tmp_path):
    # Moving a finding (unrelated edits above it) must not churn the
    # baseline: entries are keyed (path, code, message).
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [_violation(line=3)])
    moved = [_violation(line=40)]
    new, stale = diff_against_baseline(moved, load_baseline(baseline_path))
    assert new == [] and stale == []


def test_baseline_is_a_multiset(tmp_path):
    # Two identical messages in one file are two entries; fixing one
    # leaves the other baselined.
    pair = [_violation(line=3), _violation(line=9)]
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, pair)
    new, stale = diff_against_baseline(pair[:1], load_baseline(baseline_path))
    assert new == [] and len(stale) == 1


# ---------------------------------------------------------------------------
# CLI: --analyze end to end
# ---------------------------------------------------------------------------


def run_cli(*args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro_lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "tools"), "PATH": "/usr/bin:/bin"},
    )


def make_corpus_tree(tmp_path):
    for src_file in sorted(CORPUS.glob("*.py")):
        dest = tmp_path / "src" / "repro" / corpus_destination(src_file.name)
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(src_file.read_text(encoding="utf-8"), encoding="utf-8")
    return tmp_path / "src"


def test_cli_analyze_reports_findings_as_json(tmp_path):
    src = make_corpus_tree(tmp_path)
    report = tmp_path / "report.json"
    proc = run_cli(
        "--analyze",
        "--no-baseline",
        "--output",
        "json",
        "--report",
        str(report),
        str(src),
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["mode"] == "analyze"
    assert payload["count"] == len(expected_markers())
    assert payload["new_count"] == payload["count"]
    assert report.exists() and json.loads(report.read_text())["count"] == payload["count"]
    hints = [v.get("hint") for v in payload["violations"]]
    assert all(hints)


def test_cli_analyze_baseline_gates_exit_code(tmp_path):
    src = make_corpus_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    first = run_cli(
        "--analyze", "--write-baseline", "--baseline", str(baseline), str(src),
        cwd=REPO_ROOT,
    )
    assert first.returncode == 0, first.stdout + first.stderr
    assert baseline.exists()

    second = run_cli(
        "--analyze", "--baseline", str(baseline), str(src), cwd=REPO_ROOT
    )
    assert second.returncode == 0, second.stdout + second.stderr

    # A new finding not in the baseline fails the run.
    extra = tmp_path / "src" / "repro" / "fresh.py"
    extra.write_text(
        '"""New module."""\n\nimport time\n\n\ndef stamp() -> float:\n'
        '    """New wall-clock read."""\n    return time.time()\n',
        encoding="utf-8",
    )
    third = run_cli(
        "--analyze", "--baseline", str(baseline), str(src), cwd=REPO_ROOT
    )
    assert third.returncode == 1
    assert "RL302" in third.stdout

    # Fixing baselined findings leaves stale entries: reported, exit 0
    # by default, exit 1 under --fail-stale (the ratchet).
    extra.unlink()
    fixed = tmp_path / "src" / "repro" / "determinism_bad.py"
    fixed.unlink()
    fourth = run_cli(
        "--analyze", "--baseline", str(baseline), str(src), cwd=REPO_ROOT
    )
    assert fourth.returncode == 0
    assert "stale" in fourth.stdout
    fifth = run_cli(
        "--analyze", "--fail-stale", "--baseline", str(baseline), str(src),
        cwd=REPO_ROOT,
    )
    assert fifth.returncode == 1


def test_repo_analysis_matches_checked_in_baseline():
    # `make analyze` equivalent: the committed baseline must be exact —
    # no new findings, no stale entries.
    proc = run_cli("--analyze", "--fail-stale", cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repo_analysis_runs_fast_enough():
    import time as _time

    start = _time.perf_counter()
    project, errors = Project.load([REPO_ROOT / "src"])
    analyze_project(project)
    elapsed = _time.perf_counter() - start
    assert errors == []
    assert elapsed < 10.0, f"analysis took {elapsed:.1f}s (budget 10s)"
