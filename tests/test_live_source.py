"""Tests for the live chunk-fed tick source and the staleness gate.

The load-bearing claims:

* :class:`LiveSimSource` yields ReplaySource-shaped ticks straight off
  the chunked simulator — correct column order, correct input channels,
  per-reading packet ages — and iteration is deterministic;
* the gate's ``max_age_s`` limit quarantines readings whose delivery
  has gone silent (loss or outage) without corrupting the per-sensor
  acceptance state, and categorizes every quarantine in
  ``reason_counts``;
* a short default-seed live run actually exhibits staleness events, so
  the online pipeline is exercised against transmission loss rather
  than only plausibility.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import StreamingError
from repro.simulation import SimulationConfig
from repro.streaming import (
    GateThresholds,
    LiveSimSource,
    OnlinePipeline,
    StreamTick,
    TickGate,
)

#: A short trace keeps the live tests in interactive-test territory.
SHORT = SimulationConfig(days=0.5)


class TestStreamTickAges:
    def test_age_vector_accepted(self):
        tick = StreamTick(
            index=0, seconds=0.0, temperatures=[20.0, 21.0], inputs=[0.1], age_s=[5.0, 9.0]
        )
        assert tick.age_s.dtype == float

    def test_misaligned_age_rejected(self):
        with pytest.raises(StreamingError):
            StreamTick(
                index=0, seconds=0.0, temperatures=[20.0, 21.0], inputs=[0.1], age_s=[5.0]
            )

    def test_age_defaults_to_none(self):
        assert StreamTick(index=0, seconds=0.0, temperatures=[20.0], inputs=[0.1]).age_s is None


class TestStalenessGate:
    def test_non_positive_max_age_rejected(self):
        with pytest.raises(StreamingError):
            GateThresholds(max_age_s=0.0)

    def test_stale_reading_quarantined(self):
        gate = TickGate((7,), thresholds=GateThresholds(max_age_s=100.0))
        fresh = gate.check(StreamTick(0, 0.0, [20.0], [0.1], age_s=[10.0]))
        assert fresh.clean
        stale = gate.check(StreamTick(1, 900.0, [20.0], [0.1], age_s=[901.0]))
        assert not stale.sensor_ok[0]
        assert "stale" in stale.quarantined[7]
        assert gate.reason_counts == {"stale": 1}

    def test_stale_reading_does_not_update_acceptance_state(self):
        gate = TickGate((7,), thresholds=GateThresholds(max_age_s=100.0))
        gate.check(StreamTick(0, 0.0, [20.0], [0.1], age_s=[10.0]))
        gate.check(StreamTick(1, 900.0, [35.0], [0.1], age_s=[901.0]))
        # The stale 35 °C must not become the step-check baseline: a
        # fresh 21 °C two ticks later is a gap-separated reading judged
        # on range alone, exactly as if the sensor had been silent.
        after = gate.check(StreamTick(2, 1800.0, [21.0], [0.1], age_s=[5.0]))
        assert after.clean

    def test_without_ages_staleness_is_inert(self):
        gate = TickGate((7,), thresholds=GateThresholds(max_age_s=100.0))
        verdict = gate.check(StreamTick(0, 0.0, [20.0], [0.1]))
        assert verdict.clean

    def test_reason_counts_cover_all_categories(self):
        gate = TickGate((7, 8), thresholds=GateThresholds(max_age_s=100.0))
        gate.check(StreamTick(0, 0.0, [20.0, 20.0], [0.1], age_s=[1.0, 1.0]))
        gate.check(StreamTick(1, 900.0, [90.0, 31.0], [0.1], age_s=[1.0, 1.0]))
        gate.check(StreamTick(2, 1800.0, [20.0, 20.0], [0.1], age_s=[500.0, 1.0]))
        assert gate.reason_counts == {"range": 1, "step": 1, "stale": 1}


class TestLiveSimSource:
    def test_column_contract_mirrors_replay(self):
        source = LiveSimSource(SHORT)
        assert all(isinstance(s, int) for s in source.sensor_ids)
        assert source.channels.names[-3:] == ("occupancy", "lighting", "ambient")
        assert len(source) == SHORT.n_steps // (900 // int(SHORT.dt))

    def test_streams_only_reliable_near_ground_units(self):
        from repro.geometry.layout import RELIABLE_GROUND_SENSOR_IDS

        source = LiveSimSource(SHORT)
        assert source.sensor_ids == RELIABLE_GROUND_SENSOR_IDS

    def test_ticks_carry_ages_and_inputs(self):
        source = LiveSimSource(SHORT, fade_every_days=0.0)
        ticks = list(source)
        assert len(ticks) == len(source)
        assert [t.index for t in ticks] == list(range(len(ticks)))
        for tick in ticks:
            assert tick.age_s is not None
            assert tick.inputs.shape == (source.channels.n_channels,)
            assert np.all(np.isfinite(tick.inputs))
        # After the first heartbeat everything has been delivered once.
        late = ticks[-1]
        assert np.all(np.isfinite(late.temperatures))
        assert np.all(late.age_s >= 0.0)

    def test_iteration_is_repeatable(self):
        source = LiveSimSource(SHORT)
        first = [(t.temperatures.copy(), t.age_s.copy()) for t in source]
        second = [(t.temperatures.copy(), t.age_s.copy()) for t in source]
        for (temps_a, ages_a), (temps_b, ages_b) in zip(first, second):
            assert np.array_equal(temps_a, temps_b, equal_nan=True)
            assert np.array_equal(ages_a, ages_b)

    def test_readings_track_the_room(self):
        source = LiveSimSource(SHORT, fade_every_days=0.0)
        last = list(source)[-1]
        finite = last.temperatures[np.isfinite(last.temperatures)]
        assert finite.size > 0
        assert np.all((finite > 5.0) & (finite < 40.0))

    def test_misaligned_tick_period_rejected(self):
        with pytest.raises(StreamingError):
            LiveSimSource(SHORT, tick_period_s=97.0)

    def test_bad_fade_parameters_rejected(self):
        with pytest.raises(StreamingError):
            LiveSimSource(SHORT, fade_every_days=-1.0)
        with pytest.raises(StreamingError):
            LiveSimSource(SHORT, fade_minutes=(0.0, 10.0))

    def test_default_thresholds_arm_staleness(self):
        source = LiveSimSource(SHORT)
        thresholds = source.default_thresholds()
        assert thresholds.max_age_s == pytest.approx(
            1.5 * source.readout.heartbeat_period
        )


class TestLivePipeline:
    def test_online_pipeline_sees_staleness_events(self):
        """A default-seed day of live streaming exercises the stale path."""
        source = LiveSimSource(SimulationConfig(days=1.0))
        pipeline = OnlinePipeline(
            source.sensor_ids,
            n_inputs=source.channels.n_channels,
            gate_thresholds=source.default_thresholds(),
        )
        summary = pipeline.run(source)
        assert summary.n_ticks == len(source)
        assert summary.n_updates > 0
        assert pipeline.gate.reason_counts.get("stale", 0) > 0
        assert summary.n_quarantined_ticks > 0

    def test_quiet_radio_environment_is_clean(self):
        source = LiveSimSource(
            SHORT, fade_every_days=0.0, network=_lossless_network()
        )
        pipeline = OnlinePipeline(
            source.sensor_ids,
            n_inputs=source.channels.n_channels,
            gate_thresholds=source.default_thresholds(),
        )
        summary = pipeline.run(source)
        assert summary.n_quarantined_ticks == 0


def _lossless_network():
    from repro.sensing.network import NetworkConfig

    # No packet loss and (statistically certain over half a day) no
    # outage windows: spacings of 10^6 days never fire in-trace.
    return NetworkConfig(
        packet_loss=0.0,
        station_outage_every_days=1e6,
        server_outage_every_days=1e6,
    )


class TestFleetBuildingSource:
    def test_fleet_member_streams_through_scaled_layout(self):
        from repro.simulation.fleet import FleetConfig, build_fleet
        from repro.streaming import building_sensor_layout

        building = build_fleet(FleetConfig(n_buildings=2, days=0.5))[1]
        source = LiveSimSource(building=building)
        layout = building_sensor_layout(building)
        # The source keeps the reliable near-ground wireless population.
        assert source.sensor_ids == tuple(
            sid
            for sid, spec in sorted(layout.items())
            if spec.near_ground and not spec.is_thermostat and spec.fault is None
        )
        ticks = list(source)
        assert len(ticks) == len(source)
        assert np.all(np.isfinite(ticks[-1].temperatures))

    def test_building_and_config_are_mutually_exclusive(self):
        from repro.simulation.fleet import FleetConfig, build_fleet

        building = build_fleet(FleetConfig(n_buildings=1, days=0.5))[0]
        with pytest.raises(StreamingError):
            LiveSimSource(SHORT, building=building)


class TestCombinedFaultGating:
    def test_reason_counts_under_staleness_and_clock_skew(self):
        """Outage staleness and a clock-skewed unit are counted apart.

        A default-seed day of live streaming has seeded outage windows
        (the ``stale`` events); on top of that one sensor's trace is
        corrupted by the campaign-framework ``clock_skew`` fault, whose
        backward replay at onset jumps the reported reading by more than
        the step bound.  The gate must quarantine both — staleness by
        age, the skew jump by implausible step — with correct
        categories, and the skewed sensor must gain a post-onset step
        quarantine the clean trace does not have.
        """
        from repro.sensing.faults import FaultConfig, apply_fault_config

        source = LiveSimSource(SimulationConfig(days=1.0))
        ticks = list(source)
        temps = np.array([t.temperatures for t in ticks])
        seconds = np.array([t.seconds for t in ticks])
        # Sensor 7 warms ~0.8 degC into midday, so the onset-time
        # backward replay overshoots a 0.5 degC step bound.
        col = source.sensor_ids.index(7)
        skewed = apply_fault_config(
            FaultConfig(
                kind="clock_skew",
                severity=1.0,
                onset_fraction=0.5,
                clock_skew_s_per_day=100 * 86400.0,
            ),
            temps[:, col],
            seconds,
            seed=11,
            sensor_id=7,
        )
        onset = len(ticks) // 2

        def run_gate(column):
            thresholds = replace(source.default_thresholds(), max_step_c=0.5)
            gate = TickGate(source.sensor_ids, thresholds=thresholds)
            post_onset_hits = 0
            for k, t in enumerate(ticks):
                modified = t.temperatures.copy()
                modified[col] = column[k]
                gated = gate.check(
                    StreamTick(
                        index=t.index,
                        seconds=t.seconds,
                        temperatures=modified,
                        inputs=t.inputs,
                        age_s=t.age_s,
                    )
                )
                if k >= onset and 7 in gated.quarantined:
                    assert "step" in gated.quarantined[7]
                    post_onset_hits += 1
            return gate, post_onset_hits

        clean_gate, clean_hits = run_gate(temps[:, col])
        skew_gate, skew_hits = run_gate(skewed)
        # The seeded outages drive staleness in both runs.
        assert clean_gate.reason_counts.get("stale", 0) > 0
        assert skew_gate.reason_counts.get("stale", 0) > 0
        assert skew_gate.reason_counts["stale"] == clean_gate.reason_counts["stale"]
        # The skew adds a step quarantine on the faulted sensor that the
        # clean run does not have, and it lands after the fault onset.
        assert skew_gate.reason_counts.get("step", 0) > clean_gate.reason_counts.get(
            "step", 0
        )
        assert clean_hits == 0
        assert skew_hits > 0
