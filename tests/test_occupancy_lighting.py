"""Tests for occupancy and lighting models."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.geometry import ZoneGrid, default_auditorium
from repro.simulation.calendar import Event, EventCalendar
from repro.simulation.lighting import LightingModel
from repro.simulation.occupancy import OccupancyModel, presence_fraction


@pytest.fixture
def setup():
    auditorium = default_auditorium()
    grid = ZoneGrid(auditorium, nx=6, ny=5)
    event = Event(
        name="lecture",
        start=datetime(2013, 2, 1, 10, 0),
        duration_minutes=80,
        attendance=60,
        kind="lecture",
    )
    calendar = EventCalendar(events=[event])
    return auditorium, grid, calendar, event


class TestPresenceFraction:
    def test_profile(self, setup):
        _, _, _, event = setup
        start = event.start
        assert presence_fraction(event, start - timedelta(minutes=20)) == 0.0
        assert 0.0 < presence_fraction(event, start - timedelta(minutes=5)) < 1.0
        assert presence_fraction(event, start + timedelta(minutes=30)) == 1.0
        assert presence_fraction(event, event.end + timedelta(minutes=5)) == 0.0

    def test_monotone_arrival(self, setup):
        _, _, _, event = setup
        times = [event.start + timedelta(minutes=m) for m in range(-12, 4)]
        fractions = [presence_fraction(event, t) for t in times]
        assert all(b >= a for a, b in zip(fractions, fractions[1:]))


class TestOccupancyModel:
    def test_total_matches_attendance_mid_event(self, setup):
        auditorium, grid, calendar, event = setup
        model = OccupancyModel(calendar, auditorium, grid, seed=1)
        assert model.total_at(event.start + timedelta(minutes=30)) == 60
        assert model.total_at(event.start - timedelta(hours=2)) == 0

    def test_zone_distribution_sums_to_total(self, setup):
        auditorium, grid, calendar, event = setup
        model = OccupancyModel(calendar, auditorium, grid, seed=1)
        when = event.start + timedelta(minutes=30)
        zones = model.zone_at(when)
        assert zones.sum() == pytest.approx(60.0)
        assert (zones >= 0).all()

    def test_back_bias(self, setup):
        auditorium, grid, calendar, event = setup
        model = OccupancyModel(calendar, auditorium, grid, seed=1, back_bias=1.0)
        zones = model.zone_at(event.start + timedelta(minutes=30)).reshape(5, 6)
        # Seats span rows 1-4 of the grid; the back rows hold more people.
        assert zones[3:].sum() > zones[:3].sum()

    def test_trajectory_matches_pointwise(self, setup):
        auditorium, grid, calendar, event = setup
        model = OccupancyModel(calendar, auditorium, grid, seed=1)
        epoch = datetime(2013, 2, 1)
        seconds = np.arange(0, 86400, 300.0)
        totals, zones = model.trajectory(epoch, seconds)
        for i in (0, 120, 125, 130, 287):
            when = epoch + timedelta(seconds=float(seconds[i]))
            assert totals[i] == pytest.approx(
                sum(
                    e.attendance * presence_fraction(e, when)
                    for e in calendar.events
                )
            )
            assert zones[i].sum() == pytest.approx(totals[i])

    def test_trajectory_empty(self, setup):
        auditorium, grid, calendar, _ = setup
        model = OccupancyModel(calendar, auditorium, grid, seed=1)
        totals, zones = model.trajectory(datetime(2013, 2, 1), np.empty(0))
        assert totals.size == 0 and zones.shape == (0, grid.n_zones)


class TestLightingModel:
    def test_on_around_event(self, setup):
        _, _, calendar, event = setup
        model = LightingModel(calendar)
        assert model.state_at(event.start - timedelta(minutes=10)) == 1
        assert model.state_at(event.start + timedelta(minutes=40)) == 1
        assert model.state_at(event.end + timedelta(minutes=5)) == 1
        assert model.state_at(event.end + timedelta(minutes=20)) == 0
        assert model.state_at(event.start - timedelta(hours=3)) == 0

    def test_presentation_goes_dark(self):
        seminar = Event(
            name="seminar",
            start=datetime(2013, 2, 1, 12, 0),
            duration_minutes=60,
            attendance=85,
            kind="seminar",
            presentation=True,
        )
        model = LightingModel(EventCalendar(events=[seminar]))
        assert model.state_at(seminar.start + timedelta(minutes=5)) == 1
        assert model.state_at(seminar.start + timedelta(minutes=30)) == 0
        assert model.state_at(seminar.end - timedelta(minutes=2)) == 1

    def test_trajectory_matches_pointwise(self, setup):
        _, _, calendar, _ = setup
        model = LightingModel(calendar)
        epoch = datetime(2013, 2, 1)
        seconds = np.arange(0, 86400, 300.0)
        trajectory = model.trajectory(epoch, seconds)
        for i in range(0, len(seconds), 7):
            when = epoch + timedelta(seconds=float(seconds[i]))
            assert trajectory[i] == model.state_at(when)

    def test_heat(self, setup):
        _, _, calendar, _ = setup
        model = LightingModel(calendar, heat_watts=2000.0)
        assert model.heat_at(1.0) == 2000.0
        assert model.heat_at(0.0) == 0.0
