"""The exception hierarchy is catchable at one base class, every error is
constructible and printable, and every error class is actually raised by
at least one real code path in the library."""

import numpy as np
import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.GeometryError,
    errors.SimulationError,
    errors.SensingError,
    errors.DataError,
    errors.NoUsableSensorsError,
    errors.IdentificationError,
    errors.NoUsableSegmentsError,
    errors.ClusteringError,
    errors.SelectionError,
    errors.ExperimentError,
    errors.ExperimentTimeoutError,
    errors.WorkerCrashError,
    errors.ContractError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_constructible_and_printable(exc):
    instance = exc("the drive exploded")
    assert str(instance) == "the drive exploded"
    assert exc.__name__ in repr(instance)
    assert exc("no args") is not None


def test_base_is_exception():
    assert issubclass(errors.ReproError, Exception)


def test_all_exports_cover_hierarchy():
    exported = set(errors.__all__)
    for exc in ALL_ERRORS:
        assert exc.__name__ in exported
    assert "ReproError" in exported


# ---------------------------------------------------------------------------
# Each error class is raised by a real code path
# ---------------------------------------------------------------------------


def test_configuration_error_raised():
    from repro.simulation.rc_network import RCNetworkConfig

    with pytest.raises(errors.ConfigurationError):
        RCNetworkConfig(zone_capacitance=-1.0)


def test_geometry_error_raised():
    from repro.geometry import Auditorium

    with pytest.raises(errors.GeometryError):
        Auditorium(width=-1.0)


def test_simulation_error_raised():
    from repro.simulation.integrator import substep_count

    with pytest.raises(errors.SimulationError):
        substep_count(-1.0, 1.0)


def test_sensing_error_raised():
    from repro.sensing.camera import CameraConfig

    with pytest.raises(errors.SensingError):
        CameraConfig(snapshot_period=-1.0)


def test_data_error_raised():
    from repro.data.gaps import Segment

    with pytest.raises(errors.DataError):
        Segment(3, 3)


def test_identification_error_raised():
    from repro.sysid.identify import IdentificationOptions

    with pytest.raises(errors.IdentificationError):
        IdentificationOptions(order=3)


def test_clustering_error_raised():
    from repro.cluster.similarity import SimilarityOptions

    with pytest.raises(errors.ClusteringError):
        SimilarityOptions(sigma=-1.0)


def test_selection_error_raised():
    from repro.selection.gp import empirical_covariance

    with pytest.raises(errors.SelectionError):
        empirical_covariance(np.zeros(3))


def test_contract_error_raised():
    from repro.contracts import ensure_finite

    with pytest.raises(errors.ContractError):
        ensure_finite(np.array([np.nan]), "probe")


def test_no_usable_sensors_error_raised():
    from repro.data.screening import ScreeningReport

    report = ScreeningReport(kept_ids=(), dropped={3: "stuck for 90% of the trace"})
    with pytest.raises(errors.NoUsableSensorsError, match="stuck"):
        report.require_survivors()
    # Still catchable as the coarser DataError at API boundaries.
    assert issubclass(errors.NoUsableSensorsError, errors.DataError)


def test_no_usable_segments_error_raised():
    from repro.sysid.identify import IdentificationOptions, build_regression

    with pytest.raises(errors.NoUsableSegmentsError, match="long enough"):
        build_regression(
            np.zeros((5, 2)), np.zeros((5, 3)), [], IdentificationOptions(order=1)
        )
    assert issubclass(errors.NoUsableSegmentsError, errors.IdentificationError)


def test_experiment_error_raised():
    from repro.experiments.runner import resolve_ids

    with pytest.raises(errors.ExperimentError):
        resolve_ids(["not-an-experiment"])


def test_runner_failure_markers_are_experiment_errors():
    # Raised by the runner's isolation machinery (exercised end-to-end
    # in test_runner.py); here we pin the taxonomy they live under.
    assert issubclass(errors.ExperimentTimeoutError, errors.ExperimentError)
    assert issubclass(errors.WorkerCrashError, errors.ExperimentError)
