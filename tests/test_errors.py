"""The exception hierarchy is catchable at one base class."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.GeometryError,
    errors.SimulationError,
    errors.SensingError,
    errors.DataError,
    errors.IdentificationError,
    errors.ClusteringError,
    errors.SelectionError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_base_is_exception():
    assert issubclass(errors.ReproError, Exception)
