"""Tests for the prediction service, its CLI and the streaming experiment.

Covers the ISSUE's service-level acceptance claims: micro-batched
responses byte-identical to single-request responses, explicit
backpressure on the bounded queue, latency/throughput counters, the
``repro stream`` / ``repro serve`` round trip through a snapshot, and
the ``ext-streaming`` experiment rendering through the cache.
"""

import io
import json

import numpy as np
import pytest

from repro.errors import ServiceOverloadError, StreamingError
from repro.streaming import (
    GateThresholds,
    OnlinePipeline,
    PredictionRequest,
    PredictionService,
    ReplaySource,
    ServiceConfig,
    build_request,
)

from tests.conftest import make_linear_dataset

WIDE_GATE = GateThresholds(
    min_plausible_c=-1000.0, max_plausible_c=1000.0, max_step_c=1000.0
)


@pytest.fixture(scope="module")
def dataset():
    return make_linear_dataset(n_days=2.0, noise=0.01)


def make_pipeline(dataset):
    pipeline = OnlinePipeline(
        dataset.sensor_ids,
        dataset.channels.n_channels,
        order=2,
        gate_thresholds=WIDE_GATE,
    )
    pipeline.run(ReplaySource(dataset))
    return pipeline


@pytest.fixture
def pipeline(dataset):
    return make_pipeline(dataset)


def make_request(dataset, rid, horizon=6, scale=1.0):
    return PredictionRequest(
        request_id=rid,
        horizon_inputs=scale * np.tile(dataset.inputs[-1], (horizon, 1)),
    )


class TestServiceConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_queue": 0}, {"max_batch": 0}, {"max_horizon_ticks": 0}],
    )
    def test_non_positive_limits_rejected(self, kwargs):
        with pytest.raises(StreamingError):
            ServiceConfig(**kwargs)


class TestPredictionRequest:
    def test_horizon_must_be_matrix(self):
        with pytest.raises(StreamingError, match="2-D"):
            PredictionRequest(request_id="r", horizon_inputs=np.zeros(7))

    def test_history_must_be_matrix(self):
        with pytest.raises(StreamingError, match="2-D"):
            PredictionRequest(
                request_id="r",
                horizon_inputs=np.zeros((4, 7)),
                history=np.zeros(3),
            )


class TestMicroBatching:
    def test_batched_responses_byte_identical_to_single(self, dataset):
        """ISSUE acceptance: micro-batching never changes an answer."""
        batched = PredictionService(make_pipeline(dataset))
        single = PredictionService(make_pipeline(dataset))
        requests = [
            make_request(dataset, f"r{i}", horizon=4 + i, scale=0.8 + 0.1 * i)
            for i in range(5)
        ]
        for request in requests:
            batched.submit(request)
        responses = batched.drain()
        assert [r.request_id for r in responses] == [r.request_id for r in requests]
        for request, response in zip(requests, responses):
            alone = single.handle(request)
            assert response.predictions.tobytes() == alone.predictions.tobytes()
            assert response.n_model_updates == alone.n_model_updates

    def test_drain_respects_max_batch(self, pipeline, dataset):
        service = PredictionService(pipeline, ServiceConfig(max_batch=2))
        for i in range(5):
            service.submit(make_request(dataset, f"r{i}"))
        assert len(service.drain()) == 2
        assert service.pending == 3
        assert len(service.drain()) == 2
        assert len(service.drain()) == 1
        assert service.drain() == []
        assert service.stats.batches == 3

    def test_explicit_history_overrides_the_live_buffer(self, pipeline, dataset):
        service = PredictionService(pipeline)
        history = np.full((2, len(dataset.sensor_ids)), 21.0)
        request = PredictionRequest(
            request_id="seeded",
            horizon_inputs=np.tile(dataset.inputs[-1], (4, 1)),
            history=history,
        )
        response = service.handle(request)
        expected = pipeline.model().simulate(
            history, request.horizon_inputs
        )
        assert response.predictions.tobytes() == expected.tobytes()


class TestBackpressure:
    def test_overload_raises_and_counts(self, pipeline, dataset):
        service = PredictionService(pipeline, ServiceConfig(max_queue=2))
        service.submit(make_request(dataset, "a"))
        service.submit(make_request(dataset, "b"))
        with pytest.raises(ServiceOverloadError, match="queue full"):
            service.submit(make_request(dataset, "c"))
        # Backpressure counts as shed, not rejected: the request was
        # valid, the service just had no room for it.
        assert service.stats.shed == 1
        assert service.stats.rejected == 0
        assert service.pending == 2  # the shed request never queued

    def test_invalid_request_counts_as_rejected_not_shed(self, pipeline, dataset):
        service = PredictionService(pipeline, ServiceConfig(max_horizon_ticks=8))
        with pytest.raises(StreamingError, match="horizon"):
            service.submit(make_request(dataset, "long", horizon=9))
        assert service.stats.rejected == 1
        assert service.stats.shed == 0

    def test_horizon_limits_enforced_at_submit(self, pipeline, dataset):
        service = PredictionService(pipeline, ServiceConfig(max_horizon_ticks=8))
        with pytest.raises(StreamingError, match="horizon"):
            service.submit(make_request(dataset, "long", horizon=9))
        with pytest.raises(StreamingError, match="horizon"):
            service.submit(
                PredictionRequest(
                    request_id="empty", horizon_inputs=np.zeros((0, 7))
                )
            )

    def test_no_history_anywhere_is_an_error(self, dataset):
        fresh = OnlinePipeline(
            dataset.sensor_ids, dataset.channels.n_channels, order=2
        )
        # Enough synthetic rows to determine the model, but no buffer.
        trained = make_pipeline(dataset)
        trained.estimator.reset_history()
        service = PredictionService(trained)
        service.submit(make_request(dataset, "r"))
        with pytest.raises(StreamingError, match="history"):
            service.drain()
        assert fresh.estimator.history() is None


class TestStats:
    def test_counters_accumulate(self, pipeline, dataset):
        service = PredictionService(pipeline)
        for i in range(3):
            service.submit(make_request(dataset, f"r{i}"))
        service.drain()
        stats = service.stats
        assert stats.served == 3 and stats.batches == 1
        assert stats.total_latency_s > 0 and stats.busy_s > 0
        assert stats.mean_latency_s == pytest.approx(stats.total_latency_s / 3)
        assert stats.throughput_rps() > 0
        payload = stats.as_dict()
        assert set(payload) == {
            "served",
            "rejected",
            "shed",
            "batches",
            "mean_latency_s",
            "throughput_rps",
        }
        assert payload["shed"] == 0

    def test_latency_covers_queue_wait(self, pipeline, dataset):
        import time

        service = PredictionService(pipeline)
        service.submit(make_request(dataset, "waits"))
        time.sleep(0.01)
        (response,) = service.drain()
        assert response.latency_s >= 0.01

    def test_empty_service_stats_are_zero(self, pipeline):
        stats = PredictionService(pipeline).stats
        assert stats.mean_latency_s == 0.0
        assert stats.throughput_rps() == 0.0


class TestResponsePayload:
    def test_payload_is_json_round_trippable(self, pipeline, dataset):
        service = PredictionService(pipeline)
        response = service.handle(make_request(dataset, "json", horizon=3))
        payload = json.loads(json.dumps(response.to_payload()))
        assert payload["id"] == "json"
        assert np.asarray(payload["predictions"]).shape == (
            3,
            len(dataset.sensor_ids),
        )
        assert payload["n_model_updates"] == pipeline.estimator.n_updates


class TestBuildRequest:
    def test_explicit_inputs_matrix(self):
        request = build_request(
            {"id": "mine", "inputs": [[0.0] * 7] * 4}, None, "auto", 100
        )
        assert request.request_id == "mine"
        assert request.horizon_inputs.shape == (4, 7)

    def test_horizon_ticks_tiles_the_fallback(self):
        fallback = np.arange(7.0)
        request = build_request({"horizon_ticks": 3}, fallback, "auto", 100)
        assert request.request_id == "auto"
        np.testing.assert_array_equal(
            request.horizon_inputs, np.tile(fallback, (3, 1))
        )

    def test_horizon_ticks_out_of_range_rejected(self):
        with pytest.raises(StreamingError, match="horizon_ticks"):
            build_request({"horizon_ticks": 200}, np.zeros(7), "auto", 100)

    def test_horizon_ticks_without_fallback_rejected(self):
        with pytest.raises(StreamingError, match="observed inputs"):
            build_request({"horizon_ticks": 3}, None, "auto", 100)

    def test_missing_fields_rejected(self):
        with pytest.raises(StreamingError, match="'inputs' or 'horizon_ticks'"):
            build_request({"id": "empty"}, None, "auto", 100)

    def test_history_passes_through(self):
        request = build_request(
            {"inputs": [[0.0] * 7] * 2, "history": [[20.0] * 3] * 2},
            None,
            "auto",
            100,
        )
        assert request.history is not None and request.history.shape == (2, 3)


@pytest.fixture(autouse=True)
def _warm_cache(week_output):
    """CLI and experiment tests run on the cached 7-day trace."""


def run_cli(capsys, *args):
    from repro.cli import main

    code = main(list(args))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestStreamServeCli:
    def test_stream_reports_the_online_model(self, capsys):
        code, out, _ = run_cli(capsys, "stream", "--days", "7")
        assert code == 0
        assert "streamed sensors" in out
        assert "online model: order 2" in out

    def test_stream_then_serve_restores_the_snapshot(self, capsys):
        code, out, _ = run_cli(
            capsys, "stream", "--days", "7", "--snapshot", "cli-test"
        )
        assert code == 0
        assert "snapshot 'cli-test' saved" in out

        code, out, err = run_cli(
            capsys, "serve", "--days", "7", "--restore", "cli-test", "--demo", "2"
        )
        assert code == 0
        assert "not found" not in err  # the snapshot really was restored
        lines = [json.loads(line) for line in out.splitlines() if line]
        assert len(lines) == 2
        assert all("predictions" in line for line in lines)
        assert "served 2 requests" in err

    def test_serve_answers_json_lines_from_stdin(self, capsys, monkeypatch):
        payloads = "\n".join(
            [
                json.dumps({"id": "good", "horizon_ticks": 4}),
                "not json at all",
                json.dumps({"id": "bad", "horizon_ticks": 99999}),
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(payloads + "\n"))
        code, out, err = run_cli(capsys, "serve", "--days", "7")
        assert code == 0
        lines = [json.loads(line) for line in out.splitlines() if line]
        answered = [line for line in lines if "predictions" in line]
        errors = [line for line in lines if "error" in line]
        assert [line["id"] for line in answered] == ["good"]
        assert len(errors) == 2
        assert "served 1 requests" in err
        # The stderr summary exposes the shed/rejected counters
        # explicitly (invalid lines fail in build_request, before the
        # service's own rejected counter, so both stay 0 here).
        assert "shed 0" in err
        assert "rejected 0" in err


class TestExtStreamingExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import EXPERIMENTS
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext.create(days=14.0)
        return EXPERIMENTS["ext-streaming"].run(context=ctx)

    def test_convergence_rows_cover_the_checkpoints(self, result):
        from repro.experiments.ext_streaming import CHECKPOINT_FRACTIONS

        assert [row[0] for row in result.rows] == list(CHECKPOINT_FRACTIONS)
        final = result.rows[-1]
        assert isinstance(final[3], float)  # online RMSE resolved
        assert final[5] < 0.05  # parameters converged to the batch fit

    def test_drift_alarm_fires_after_the_onset(self, result):
        drift = result.extras["drift"]
        assert drift["fired_at_tick"] is not None
        assert drift["delay_ticks"] >= 0
        if drift["delay_bound_ticks"] is not None:
            assert drift["delay_ticks"] <= drift["delay_bound_ticks"]

    def test_curves_stored_through_the_cache(self, result):
        from repro.core.artifacts import default_cache

        stored = default_cache().load(result.extras["artifact_key"])
        assert stored is not None
        assert stored["convergence"] == result.extras["convergence"]
        assert stored["drift"] == result.extras["drift"]

    def test_render_mentions_both_halves(self, result):
        text = result.render()
        assert "online RMSE" in text
        assert "drift alarm" in text
        assert "recommend re-clustering" in text
