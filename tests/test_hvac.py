"""Tests for the VAV boxes and the HVAC plant."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.hvac import HVACConfig, HVACPlant, HVACSchedule
from repro.simulation.vav import VAVBox, VAVConfig


class TestVAVConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VAVConfig(min_flow=0.5, max_flow=0.1)
        with pytest.raises(ConfigurationError):
            VAVConfig(cold_deck_temp=30.0, reheat_max_temp=20.0)
        with pytest.raises(ConfigurationError):
            VAVConfig(flow_time_constant=0.0)


class TestVAVBox:
    def test_starts_idle(self):
        box = VAVBox(1, VAVConfig())
        assert box.flow == VAVConfig().min_flow
        assert box.discharge_temp == VAVConfig().neutral_temp

    def test_relaxes_toward_setpoint(self):
        config = VAVConfig()
        box = VAVBox(1, config)
        for _ in range(100):
            box.command(config.max_flow, config.cold_deck_temp, dt=60.0)
        assert box.flow == pytest.approx(config.max_flow, rel=1e-3)
        assert box.discharge_temp == pytest.approx(config.cold_deck_temp, rel=1e-2)

    def test_lag_orders(self):
        """The damper responds faster than the discharge temperature."""
        config = VAVConfig()
        box = VAVBox(1, config)
        box.command(config.max_flow, config.cold_deck_temp, dt=120.0)
        flow_progress = (box.flow - config.min_flow) / (config.max_flow - config.min_flow)
        temp_progress = (config.neutral_temp - box.discharge_temp) / (
            config.neutral_temp - config.cold_deck_temp
        )
        assert flow_progress > temp_progress

    def test_setpoints_clipped(self):
        config = VAVConfig()
        box = VAVBox(1, config)
        for _ in range(200):
            box.command(99.0, -50.0, dt=600.0)
        assert box.flow <= config.max_flow + 1e-9
        assert box.discharge_temp >= config.cold_deck_temp - 1e-9

    def test_unconditionally_stable_for_huge_dt(self):
        config = VAVConfig()
        box = VAVBox(1, config)
        box.command(config.max_flow, config.reheat_max_temp, dt=1e6)
        assert config.min_flow <= box.flow <= config.max_flow

    def test_dt_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            VAVBox(1, VAVConfig()).command(0.1, 15.0, dt=0.0)

    def test_heat_rate_sign(self):
        config = VAVConfig()
        box = VAVBox(1, config)
        for _ in range(100):
            box.command(config.max_flow, config.cold_deck_temp, dt=60.0)
        assert box.heat_rate_into(zone_temp_c=22.0) < 0  # cooling


class TestHVACSchedule:
    def test_window(self):
        schedule = HVACSchedule()
        assert schedule.is_occupied(6.0)
        assert schedule.is_occupied(20.99)
        assert not schedule.is_occupied(21.0)
        assert not schedule.is_occupied(3.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HVACSchedule(on_hour=10.0, off_hour=9.0)


class TestHVACConfig:
    def test_blend_rows_validated(self):
        with pytest.raises(ConfigurationError):
            HVACConfig(thermostat_blend=((0.5, 0.6),))
        with pytest.raises(ConfigurationError):
            HVACConfig(kp=-1.0)


class TestHVACPlant:
    def test_cooling_when_warm(self):
        plant = HVACPlant()
        config = plant.config
        for _ in range(60):
            flows, temps = plant.step(12.0, [24.0, 24.0], dt=60.0)
        assert flows.min() > 0.5 * config.vav.max_flow
        assert temps.max() == pytest.approx(config.vav.cold_deck_temp, abs=0.5)

    def test_min_flow_when_cold(self):
        plant = HVACPlant()
        config = plant.config
        for _ in range(60):
            flows, _ = plant.step(12.0, [18.0, 18.0], dt=60.0)
        assert flows.max() == pytest.approx(config.vav.min_flow, abs=0.01)

    def test_unoccupied_standby(self):
        plant = HVACPlant()
        config = plant.config
        for _ in range(60):
            flows, temps = plant.step(2.0, [19.0, 19.0], dt=60.0, return_temp_c=19.5)
        expected = config.vav.min_flow + config.standby_flow_fraction * (
            config.vav.max_flow - config.vav.min_flow
        )
        np.testing.assert_allclose(flows, expected, rtol=1e-2)
        # Discharge rides the return temperature (no conditioning).
        np.testing.assert_allclose(temps, 19.5, atol=0.5)

    def test_per_vav_thermostat_wiring(self):
        plant = HVACPlant()
        for _ in range(60):
            flows, _ = plant.step(12.0, [24.0, 19.0], dt=60.0)
        # VAV 1 follows the warm thermostat, VAV 2 the cool one.
        assert flows[0] > flows[1]

    def test_integrator_no_windup_after_cold_morning(self):
        """After hours of cold-morning error, a warm room still triggers
        cooling within ~30 minutes (the leaky conditional integrator)."""
        plant = HVACPlant()
        for _ in range(240):  # 4 h of 'too cold'
            plant.step(8.0, [19.0, 19.0], dt=60.0)
        for _ in range(30):  # room becomes warm
            flows, _ = plant.step(12.0, [22.5, 22.5], dt=60.0)
        assert flows.min() > 0.3 * plant.config.vav.max_flow

    def test_reset(self):
        plant = HVACPlant()
        plant.step(12.0, [25.0, 25.0], dt=600.0)
        plant.reset()
        assert plant.flows().max() == pytest.approx(plant.config.vav.min_flow)
        np.testing.assert_array_equal(plant._integrators, 0.0)

    def test_requires_two_thermostats(self):
        with pytest.raises(ConfigurationError):
            HVACPlant().step(12.0, [21.0], dt=60.0)
