"""Tests for the fault-scenario framework (configs, kinds, campaigns)."""

import numpy as np
import pytest

from repro.data.dataset import InputChannels
from repro.errors import ConfigurationError
from repro.sensing.faults import (
    FAULT_KINDS,
    INPUT_FAULT_KINDS,
    CampaignResult,
    FaultCampaign,
    FaultConfig,
    InputFaultConfig,
    SensorFault,
    apply_campaign,
    apply_fault_config,
    apply_input_fault_config,
    default_campaign,
)

SEED = 1234


def make_trace(n=960, period_s=900.0):
    """A clean diurnal trace with its sample times."""
    seconds = np.arange(n) * period_s
    values = 20.0 + np.sin(2 * np.pi * seconds / 86400.0)
    return values, seconds


def make_inputs(n=960, period_s=900.0, seed=3):
    """A clean (n, m) input matrix with its channel layout and times."""
    gen = np.random.default_rng(seed)
    channels = InputChannels()
    seconds = np.arange(n) * period_s
    inputs = np.zeros((n, channels.n_channels))
    inputs[:, 0:4] = 0.3 + 0.2 * gen.random((n, 4))
    inputs[:, channels.index_of("occupancy")] = gen.integers(0, 60, size=n)
    inputs[:, channels.index_of("lighting")] = gen.integers(0, 2, size=n)
    inputs[:, channels.index_of("ambient")] = 5.0 + 10.0 * gen.random(n)
    return inputs, channels, seconds


class TestFaultConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultConfig(kind="gremlins")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("severity", 1.5),
            ("severity", -0.1),
            ("onset_fraction", 1.0),
            ("dropout_rate", 2.0),
            ("gap_fraction", -0.5),
            ("spike_rate", 1.01),
            ("drift_c_per_day", -1.0),
            ("spike_amplitude_c", -1.0),
            ("clock_skew_s_per_day", -1.0),
            ("burst_ticks", 0),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            FaultConfig(kind="drift", **{field: value})

    def test_describe_mentions_kind_and_severity(self):
        text = FaultConfig(kind="spikes", severity=0.5).describe()
        assert "spikes" in text and "0.5" in text


class TestApplyFaultConfig:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_deterministic(self, kind):
        values, seconds = make_trace()
        config = FaultConfig(kind=kind)
        one = apply_fault_config(config, values, seconds, SEED, sensor_id=4)
        two = apply_fault_config(config, values, seconds, SEED, sensor_id=4)
        np.testing.assert_array_equal(one, two)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_severity_zero_is_noop(self, kind):
        values, seconds = make_trace()
        config = FaultConfig(kind=kind, severity=0.0)
        out = apply_fault_config(config, values, seconds, SEED, sensor_id=4)
        np.testing.assert_array_equal(out, values)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_input_never_mutated(self, kind):
        values, seconds = make_trace()
        before = values.copy()
        apply_fault_config(FaultConfig(kind=kind), values, seconds, SEED, 4)
        np.testing.assert_array_equal(values, before)

    def test_stuck_freezes_tail(self):
        values, seconds = make_trace()
        out = apply_fault_config(
            FaultConfig(kind="stuck", onset_fraction=0.5), values, seconds, SEED, 4
        )
        half = values.size // 2
        assert np.unique(out[half:]).size == 1
        np.testing.assert_array_equal(out[: half - 1], values[: half - 1])

    def test_drift_ramps_after_onset(self):
        values, seconds = make_trace()
        config = FaultConfig(kind="drift", onset_fraction=0.0, drift_c_per_day=1.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        days = seconds / 86400.0
        np.testing.assert_allclose(out - values, days)

    def test_dropout_bursts_lose_roughly_the_rate(self):
        values, seconds = make_trace(n=4000)
        config = FaultConfig(kind="dropout_bursts", dropout_rate=0.5, onset_fraction=0.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        lost = np.isnan(out).mean()
        assert 0.2 < lost < 0.8

    def test_nan_gap_is_one_contiguous_block(self):
        values, seconds = make_trace()
        config = FaultConfig(kind="nan_gap", gap_fraction=0.3)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        missing = np.flatnonzero(np.isnan(out))
        assert missing.size == round(0.3 * values.size)
        assert np.all(np.diff(missing) == 1)

    def test_spikes_hit_roughly_the_rate(self):
        values, seconds = make_trace(n=4000)
        config = FaultConfig(kind="spikes", spike_rate=0.1, onset_fraction=0.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        hit = np.abs(out - values) > 1.0
        assert 0.05 < hit.mean() < 0.15

    def test_clock_skew_replays_earlier_samples(self):
        values, seconds = make_trace(n=2000)
        config = FaultConfig(
            kind="clock_skew", onset_fraction=0.0, clock_skew_s_per_day=3600.0
        )
        out = apply_fault_config(config, values, seconds, SEED, 4)
        # One hour of skew per day at 15-minute sampling: the last
        # sample reads from ~4 ticks/day earlier in the true trace.
        assert not np.array_equal(out, values)
        days_total = seconds[-1] / 86400.0
        expected_shift = int(round(3600.0 * days_total / 900.0))
        assert out[-1] == values[values.size - 1 - expected_shift]

    def test_battery_death_silences_the_tail(self):
        values, seconds = make_trace()
        config = FaultConfig(kind="battery_death", onset_fraction=0.25, severity=1.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        quarter = values.size // 4
        assert np.isnan(out[quarter:]).all()
        assert np.isfinite(out[: quarter - 1]).all()

    def test_misaligned_inputs_rejected(self):
        from repro.errors import SensingError

        values, seconds = make_trace()
        with pytest.raises(SensingError):
            apply_fault_config(FaultConfig(kind="drift"), values, seconds[:-1], SEED, 4)


class TestInputFaultConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown input fault kind"):
            InputFaultConfig(kind="poltergeist")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("severity", 1.5),
            ("onset_fraction", 1.0),
            ("miscount_rate", -0.1),
            ("miscount_max_people", 0),
            ("dropout_rate", 2.0),
            ("burst_ticks", 0),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            InputFaultConfig(kind="camera_miscount", **{field: value})

    def test_describe_mentions_kind(self):
        text = InputFaultConfig(kind="logger_dropout", severity=0.5).describe()
        assert "logger_dropout" in text and "0.5" in text


class TestApplyInputFaultConfig:
    @pytest.mark.parametrize("kind", INPUT_FAULT_KINDS)
    def test_deterministic(self, kind):
        inputs, channels, seconds = make_inputs()
        config = InputFaultConfig(kind=kind)
        one = apply_input_fault_config(config, inputs, channels, seconds, SEED)
        two = apply_input_fault_config(config, inputs, channels, seconds, SEED)
        np.testing.assert_array_equal(one, two)

    @pytest.mark.parametrize("kind", INPUT_FAULT_KINDS)
    def test_severity_zero_is_noop(self, kind):
        inputs, channels, seconds = make_inputs()
        config = InputFaultConfig(kind=kind, severity=0.0)
        out = apply_input_fault_config(config, inputs, channels, seconds, SEED)
        np.testing.assert_array_equal(out, inputs)

    @pytest.mark.parametrize("kind", INPUT_FAULT_KINDS)
    def test_input_never_mutated(self, kind):
        inputs, channels, seconds = make_inputs()
        before = inputs.copy()
        apply_input_fault_config(
            InputFaultConfig(kind=kind), inputs, channels, seconds, SEED
        )
        np.testing.assert_array_equal(inputs, before)

    def test_miscount_only_touches_occupancy(self):
        inputs, channels, seconds = make_inputs()
        config = InputFaultConfig(kind="camera_miscount", onset_fraction=0.5)
        out = apply_input_fault_config(config, inputs, channels, seconds, SEED)
        occ = channels.index_of("occupancy")
        others = [i for i in range(channels.n_channels) if i != occ]
        np.testing.assert_array_equal(out[:, others], inputs[:, others])
        changed = out[:, occ] != inputs[:, occ]
        assert changed.any()
        assert not changed[: inputs.shape[0] // 2].any()  # pre-onset untouched
        # Miscounts stay integer head counts, never negative.
        errors = (out[:, occ] - inputs[:, occ])[changed]
        np.testing.assert_array_equal(errors, np.round(errors))
        assert (out[:, occ] >= 0).all()

    def test_camera_freeze_holds_the_last_count(self):
        inputs, channels, seconds = make_inputs()
        config = InputFaultConfig(kind="camera_freeze", onset_fraction=0.25)
        out = apply_input_fault_config(config, inputs, channels, seconds, SEED)
        occ = channels.index_of("occupancy")
        quarter = inputs.shape[0] // 4
        assert np.unique(out[quarter:, occ]).size == 1
        np.testing.assert_array_equal(out[: quarter - 1, occ], inputs[: quarter - 1, occ])

    def test_logger_dropout_is_a_correlated_outage(self):
        """Lost portal records NaN every logger channel on the same ticks."""
        inputs, channels, seconds = make_inputs(n=2000)
        config = InputFaultConfig(kind="logger_dropout", onset_fraction=0.0)
        out = apply_input_fault_config(config, inputs, channels, seconds, SEED)
        occ = channels.index_of("occupancy")
        logger = [i for i in range(channels.n_channels) if i != occ]
        missing = np.isnan(out[:, logger])
        assert missing.any()
        # Each lost tick loses the whole record, not one channel.
        per_tick = missing.sum(axis=1)
        assert set(np.unique(per_tick)) <= {0, len(logger)}
        # The camera is a separate device; its channel survives.
        assert np.isfinite(out[:, occ]).all()


class TestFaultCampaign:
    def test_duplicate_target_rejected(self):
        fault = SensorFault(3, FaultConfig(kind="drift"))
        with pytest.raises(ConfigurationError, match="twice"):
            FaultCampaign(name="dup", faults=(fault, fault))

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            FaultCampaign(name="", faults=())

    def test_kinds_sorted_unique(self):
        campaign = default_campaign([1, 2, 3, 4], name="mix", seed=SEED)
        assert campaign.kinds == tuple(sorted(set(campaign.kinds)))
        assert len(campaign.kinds) >= 3

    def test_scaled_sets_every_severity(self):
        campaign = default_campaign([1, 2, 3], seed=SEED).scaled(0.5)
        assert all(f.config.severity == 0.5 for f in campaign.faults)
        with pytest.raises(ConfigurationError):
            campaign.scaled(1.5)

    def test_cache_key_tracks_configuration(self):
        a = default_campaign([1, 2, 3], seed=SEED)
        assert a.cache_key() == default_campaign([1, 2, 3], seed=SEED).cache_key()
        assert a.cache_key() != a.scaled(0.5).cache_key()
        assert a.cache_key() != default_campaign([1, 2, 3], seed=SEED + 1).cache_key()

    def test_duplicate_input_kind_rejected(self):
        freeze = InputFaultConfig(kind="camera_freeze")
        with pytest.raises(ConfigurationError, match="input fault kind"):
            FaultCampaign(name="dup", faults=(), input_faults=(freeze, freeze))

    def test_scaled_covers_input_faults(self):
        campaign = FaultCampaign(
            name="inputs",
            faults=(),
            input_faults=(
                InputFaultConfig(kind="camera_miscount"),
                InputFaultConfig(kind="logger_dropout"),
            ),
        ).scaled(0.25)
        assert all(f.severity == 0.25 for f in campaign.input_faults)
        assert campaign.input_kinds == ("camera_miscount", "logger_dropout")

    def test_cache_key_tracks_input_faults(self):
        bare = FaultCampaign(name="c", faults=(), seed=SEED)
        with_inputs = FaultCampaign(
            name="c",
            faults=(),
            seed=SEED,
            input_faults=(InputFaultConfig(kind="camera_freeze"),),
        )
        assert bare.cache_key() != with_inputs.cache_key()


class TestApplyCampaign:
    def test_injects_and_reports(self, week_dataset):
        ids = list(week_dataset.sensor_ids)[:3]
        campaign = default_campaign(ids, seed=SEED)
        result = apply_campaign(week_dataset, campaign)
        assert isinstance(result, CampaignResult)
        assert sorted(result.applied) == sorted(ids)
        assert result.missing == ()
        # The original dataset is untouched; the copy is corrupted.
        changed = [
            sid
            for sid in ids
            if not np.array_equal(
                result.dataset.temperatures[:, result.dataset.column_of(sid)],
                week_dataset.temperatures[:, week_dataset.column_of(sid)],
                equal_nan=True,
            )
        ]
        assert changed == sorted(ids, key=ids.index)
        for sid in week_dataset.sensor_ids:
            if sid in ids:
                continue
            np.testing.assert_array_equal(
                result.dataset.temperatures[:, result.dataset.column_of(sid)],
                week_dataset.temperatures[:, week_dataset.column_of(sid)],
            )

    def test_missing_sensors_skipped_not_raised(self, week_dataset):
        campaign = default_campaign([99991, 99992], seed=SEED)
        result = apply_campaign(week_dataset, campaign)
        assert result.missing == (99991, 99992)
        assert not result.applied
        assert "skipped" in result.summary()

    def test_deterministic_across_calls(self, week_dataset):
        campaign = default_campaign(list(week_dataset.sensor_ids)[:4], seed=SEED)
        one = apply_campaign(week_dataset, campaign)
        two = apply_campaign(week_dataset, campaign)
        np.testing.assert_array_equal(
            one.dataset.temperatures, two.dataset.temperatures
        )

    def test_input_faults_ride_the_campaign(self, week_dataset):
        campaign = FaultCampaign(
            name="portal-down",
            faults=(),
            seed=SEED,
            input_faults=(
                InputFaultConfig(kind="camera_freeze", onset_fraction=0.5),
                InputFaultConfig(kind="logger_dropout", onset_fraction=0.5),
            ),
        )
        result = apply_campaign(week_dataset, campaign)
        assert set(result.input_applied) == {"camera_freeze", "logger_dropout"}
        assert "inputs: camera_freeze" in result.summary()
        # The original dataset's inputs are untouched; the copy changed.
        assert np.isfinite(week_dataset.inputs).all()
        assert np.isnan(result.dataset.inputs).any()
        occ = week_dataset.channels.index_of("occupancy")
        assert np.unique(result.dataset.inputs[-10:, occ]).size == 1
        # And the injection is deterministic.
        again = apply_campaign(week_dataset, campaign)
        np.testing.assert_array_equal(
            again.dataset.inputs, result.dataset.inputs
        )
