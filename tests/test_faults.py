"""Tests for the fault-scenario framework (configs, kinds, campaigns)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sensing.faults import (
    FAULT_KINDS,
    CampaignResult,
    FaultCampaign,
    FaultConfig,
    SensorFault,
    apply_campaign,
    apply_fault_config,
    default_campaign,
)

SEED = 1234


def make_trace(n=960, period_s=900.0):
    """A clean diurnal trace with its sample times."""
    seconds = np.arange(n) * period_s
    values = 20.0 + np.sin(2 * np.pi * seconds / 86400.0)
    return values, seconds


class TestFaultConfig:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultConfig(kind="gremlins")

    @pytest.mark.parametrize(
        "field, value",
        [
            ("severity", 1.5),
            ("severity", -0.1),
            ("onset_fraction", 1.0),
            ("dropout_rate", 2.0),
            ("gap_fraction", -0.5),
            ("spike_rate", 1.01),
            ("drift_c_per_day", -1.0),
            ("spike_amplitude_c", -1.0),
            ("clock_skew_s_per_day", -1.0),
            ("burst_ticks", 0),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            FaultConfig(kind="drift", **{field: value})

    def test_describe_mentions_kind_and_severity(self):
        text = FaultConfig(kind="spikes", severity=0.5).describe()
        assert "spikes" in text and "0.5" in text


class TestApplyFaultConfig:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_deterministic(self, kind):
        values, seconds = make_trace()
        config = FaultConfig(kind=kind)
        one = apply_fault_config(config, values, seconds, SEED, sensor_id=4)
        two = apply_fault_config(config, values, seconds, SEED, sensor_id=4)
        np.testing.assert_array_equal(one, two)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_severity_zero_is_noop(self, kind):
        values, seconds = make_trace()
        config = FaultConfig(kind=kind, severity=0.0)
        out = apply_fault_config(config, values, seconds, SEED, sensor_id=4)
        np.testing.assert_array_equal(out, values)

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_input_never_mutated(self, kind):
        values, seconds = make_trace()
        before = values.copy()
        apply_fault_config(FaultConfig(kind=kind), values, seconds, SEED, 4)
        np.testing.assert_array_equal(values, before)

    def test_stuck_freezes_tail(self):
        values, seconds = make_trace()
        out = apply_fault_config(
            FaultConfig(kind="stuck", onset_fraction=0.5), values, seconds, SEED, 4
        )
        half = values.size // 2
        assert np.unique(out[half:]).size == 1
        np.testing.assert_array_equal(out[: half - 1], values[: half - 1])

    def test_drift_ramps_after_onset(self):
        values, seconds = make_trace()
        config = FaultConfig(kind="drift", onset_fraction=0.0, drift_c_per_day=1.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        days = seconds / 86400.0
        np.testing.assert_allclose(out - values, days)

    def test_dropout_bursts_lose_roughly_the_rate(self):
        values, seconds = make_trace(n=4000)
        config = FaultConfig(kind="dropout_bursts", dropout_rate=0.5, onset_fraction=0.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        lost = np.isnan(out).mean()
        assert 0.2 < lost < 0.8

    def test_nan_gap_is_one_contiguous_block(self):
        values, seconds = make_trace()
        config = FaultConfig(kind="nan_gap", gap_fraction=0.3)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        missing = np.flatnonzero(np.isnan(out))
        assert missing.size == round(0.3 * values.size)
        assert np.all(np.diff(missing) == 1)

    def test_spikes_hit_roughly_the_rate(self):
        values, seconds = make_trace(n=4000)
        config = FaultConfig(kind="spikes", spike_rate=0.1, onset_fraction=0.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        hit = np.abs(out - values) > 1.0
        assert 0.05 < hit.mean() < 0.15

    def test_clock_skew_replays_earlier_samples(self):
        values, seconds = make_trace(n=2000)
        config = FaultConfig(
            kind="clock_skew", onset_fraction=0.0, clock_skew_s_per_day=3600.0
        )
        out = apply_fault_config(config, values, seconds, SEED, 4)
        # One hour of skew per day at 15-minute sampling: the last
        # sample reads from ~4 ticks/day earlier in the true trace.
        assert not np.array_equal(out, values)
        days_total = seconds[-1] / 86400.0
        expected_shift = int(round(3600.0 * days_total / 900.0))
        assert out[-1] == values[values.size - 1 - expected_shift]

    def test_battery_death_silences_the_tail(self):
        values, seconds = make_trace()
        config = FaultConfig(kind="battery_death", onset_fraction=0.25, severity=1.0)
        out = apply_fault_config(config, values, seconds, SEED, 4)
        quarter = values.size // 4
        assert np.isnan(out[quarter:]).all()
        assert np.isfinite(out[: quarter - 1]).all()

    def test_misaligned_inputs_rejected(self):
        from repro.errors import SensingError

        values, seconds = make_trace()
        with pytest.raises(SensingError):
            apply_fault_config(FaultConfig(kind="drift"), values, seconds[:-1], SEED, 4)


class TestFaultCampaign:
    def test_duplicate_target_rejected(self):
        fault = SensorFault(3, FaultConfig(kind="drift"))
        with pytest.raises(ConfigurationError, match="twice"):
            FaultCampaign(name="dup", faults=(fault, fault))

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            FaultCampaign(name="", faults=())

    def test_kinds_sorted_unique(self):
        campaign = default_campaign([1, 2, 3, 4], name="mix", seed=SEED)
        assert campaign.kinds == tuple(sorted(set(campaign.kinds)))
        assert len(campaign.kinds) >= 3

    def test_scaled_sets_every_severity(self):
        campaign = default_campaign([1, 2, 3], seed=SEED).scaled(0.5)
        assert all(f.config.severity == 0.5 for f in campaign.faults)
        with pytest.raises(ConfigurationError):
            campaign.scaled(1.5)

    def test_cache_key_tracks_configuration(self):
        a = default_campaign([1, 2, 3], seed=SEED)
        assert a.cache_key() == default_campaign([1, 2, 3], seed=SEED).cache_key()
        assert a.cache_key() != a.scaled(0.5).cache_key()
        assert a.cache_key() != default_campaign([1, 2, 3], seed=SEED + 1).cache_key()


class TestApplyCampaign:
    def test_injects_and_reports(self, week_dataset):
        ids = list(week_dataset.sensor_ids)[:3]
        campaign = default_campaign(ids, seed=SEED)
        result = apply_campaign(week_dataset, campaign)
        assert isinstance(result, CampaignResult)
        assert sorted(result.applied) == sorted(ids)
        assert result.missing == ()
        # The original dataset is untouched; the copy is corrupted.
        changed = [
            sid
            for sid in ids
            if not np.array_equal(
                result.dataset.temperatures[:, result.dataset.column_of(sid)],
                week_dataset.temperatures[:, week_dataset.column_of(sid)],
                equal_nan=True,
            )
        ]
        assert changed == sorted(ids, key=ids.index)
        for sid in week_dataset.sensor_ids:
            if sid in ids:
                continue
            np.testing.assert_array_equal(
                result.dataset.temperatures[:, result.dataset.column_of(sid)],
                week_dataset.temperatures[:, week_dataset.column_of(sid)],
            )

    def test_missing_sensors_skipped_not_raised(self, week_dataset):
        campaign = default_campaign([99991, 99992], seed=SEED)
        result = apply_campaign(week_dataset, campaign)
        assert result.missing == (99991, 99992)
        assert not result.applied
        assert "skipped" in result.summary()

    def test_deterministic_across_calls(self, week_dataset):
        campaign = default_campaign(list(week_dataset.sensor_ids)[:4], seed=SEED)
        one = apply_campaign(week_dataset, campaign)
        two = apply_campaign(week_dataset, campaign)
        np.testing.assert_array_equal(
            one.dataset.temperatures, two.dataset.temperatures
        )
