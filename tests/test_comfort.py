"""Tests for the Fanger PMV/PPD model against ISO 7730 reference points."""

import pytest

from repro.comfort import ComfortConditions, pmv, pmv_ppd, ppd_from_pmv
from repro.comfort.pmv import pmv_at_temperature
from repro.errors import ConfigurationError


class TestIsoReferencePoints:
    """Validation cases from ISO 7730 Annex D (tolerance 0.05 PMV)."""

    CASES = [
        # (ta, tr, vel, rh, met, clo, expected_pmv)
        (22.0, 22.0, 0.10, 60.0, 1.2, 0.5, -0.75),
        (27.0, 27.0, 0.10, 60.0, 1.2, 0.5, 0.77),
        (23.5, 25.5, 0.10, 60.0, 1.2, 0.5, -0.01),
        (19.0, 19.0, 0.10, 40.0, 1.2, 1.0, -0.60),
        (27.0, 27.0, 0.30, 60.0, 1.2, 0.5, 0.44),
    ]

    @pytest.mark.parametrize("ta,tr,vel,rh,met,clo,expected", CASES)
    def test_reference_point(self, ta, tr, vel, rh, met, clo, expected):
        conditions = ComfortConditions(
            air_temp=ta,
            radiant_temp=tr,
            air_speed=vel,
            relative_humidity=rh,
            metabolic_rate=met,
            clothing=clo,
        )
        assert pmv(conditions) == pytest.approx(expected, abs=0.05)


class TestPPD:
    def test_minimum_at_neutral(self):
        assert ppd_from_pmv(0.0) == pytest.approx(5.0)

    def test_symmetric(self):
        assert ppd_from_pmv(1.0) == pytest.approx(ppd_from_pmv(-1.0))

    def test_increases_away_from_neutral(self):
        assert ppd_from_pmv(2.0) > ppd_from_pmv(1.0) > ppd_from_pmv(0.5)

    def test_pmv_ppd_pair(self):
        value, dissatisfied = pmv_ppd(ComfortConditions())
        assert dissatisfied == pytest.approx(ppd_from_pmv(value))


class TestBehaviour:
    def test_pmv_monotone_in_temperature(self):
        votes = [pmv_at_temperature(t) for t in (18.0, 20.0, 22.0, 24.0, 26.0)]
        assert all(b > a for a, b in zip(votes, votes[1:]))

    def test_paper_claim_half_vote_per_two_degrees(self):
        """The paper: a 2 degC spread moves PMV by ~0.5."""
        delta = pmv_at_temperature(22.0) - pmv_at_temperature(20.0)
        assert 0.3 < delta < 0.8

    def test_more_clothing_warmer(self):
        light = ComfortConditions(air_temp=20.0, radiant_temp=20.0, clothing=0.4)
        heavy = ComfortConditions(air_temp=20.0, radiant_temp=20.0, clothing=1.2)
        assert pmv(heavy) > pmv(light)

    def test_air_speed_cools(self):
        still = ComfortConditions(air_temp=26.0, radiant_temp=26.0, air_speed=0.05)
        breezy = ComfortConditions(air_temp=26.0, radiant_temp=26.0, air_speed=0.5)
        assert pmv(breezy) < pmv(still)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComfortConditions(air_speed=-0.1)
        with pytest.raises(ConfigurationError):
            ComfortConditions(relative_humidity=150.0)
        with pytest.raises(ConfigurationError):
            ComfortConditions(metabolic_rate=0.0)
