"""Tests for time axes and series containers."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.data.timeseries import EventSeries, TimeAxis, UniformSeries, iter_days
from repro.errors import DataError

EPOCH = datetime(2013, 1, 31, 0, 0, 0)


class TestTimeAxis:
    def test_basic_properties(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=96)
        assert len(axis) == 96
        assert axis.duration == pytest.approx(95 * 900.0)
        assert axis.seconds()[0] == 0.0
        assert axis.seconds()[-1] == pytest.approx(95 * 900.0)

    def test_datetime_at(self):
        axis = TimeAxis(epoch=EPOCH, period=3600.0, count=30)
        assert axis.datetime_at(0) == EPOCH
        assert axis.datetime_at(25) == EPOCH + timedelta(hours=25)
        with pytest.raises(DataError):
            axis.datetime_at(30)

    def test_index_of_roundtrip(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=200)
        for index in (0, 7, 199):
            assert axis.index_of(axis.datetime_at(index)) == index

    def test_index_of_between_ticks_floors(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=10)
        assert axis.index_of(EPOCH + timedelta(seconds=1000)) == 1

    def test_index_of_outside_raises(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=10)
        with pytest.raises(DataError):
            axis.index_of(EPOCH - timedelta(seconds=1))

    def test_hours_of_day_wraps(self):
        axis = TimeAxis(epoch=datetime(2013, 1, 31, 23, 0), period=3600.0, count=3)
        np.testing.assert_allclose(axis.hours_of_day(), [23.0, 0.0, 1.0])

    def test_day_indices_respect_midnight(self):
        axis = TimeAxis(epoch=datetime(2013, 1, 31, 23, 30), period=3600.0, count=3)
        np.testing.assert_array_equal(axis.day_indices(), [0, 1, 1])

    def test_weekdays(self):
        # 2013-01-31 is a Thursday (weekday 3).
        axis = TimeAxis(epoch=EPOCH, period=86400.0, count=4)
        np.testing.assert_array_equal(axis.weekdays(), [3, 4, 5, 6])

    def test_subaxis(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=100)
        sub = axis.subaxis(10, 20)
        assert len(sub) == 10
        assert sub.epoch == EPOCH + timedelta(seconds=10 * 900)
        with pytest.raises(DataError):
            axis.subaxis(20, 10)

    def test_spanning(self):
        axis = TimeAxis.spanning(EPOCH, EPOCH + timedelta(hours=1), 900.0)
        assert len(axis) == 5  # 0, 15, 30, 45, 60 minutes
        with pytest.raises(DataError):
            TimeAxis.spanning(EPOCH, EPOCH - timedelta(hours=1), 900.0)

    def test_invalid_construction(self):
        with pytest.raises(DataError):
            TimeAxis(epoch=EPOCH, period=0.0, count=5)
        with pytest.raises(DataError):
            TimeAxis(epoch=EPOCH, period=1.0, count=-1)


class TestEventSeries:
    def test_requires_increasing_times(self):
        with pytest.raises(DataError):
            EventSeries(epoch=EPOCH, times=np.array([1.0, 1.0]), values=np.array([2.0, 3.0]))

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            EventSeries(epoch=EPOCH, times=np.array([1.0]), values=np.array([1.0, 2.0]))

    def test_last_value_before(self):
        series = EventSeries(epoch=EPOCH, times=np.array([10.0, 20.0]), values=np.array([1.0, 2.0]))
        assert series.last_value_before(5.0) == (None, None)
        value, age = series.last_value_before(15.0)
        assert value == 1.0 and age == pytest.approx(5.0)
        value, age = series.last_value_before(20.0)
        assert value == 2.0 and age == pytest.approx(0.0)

    def test_between_is_half_open(self):
        series = EventSeries(epoch=EPOCH, times=np.array([1.0, 2.0, 3.0]), values=np.array([1, 2, 3.0]))
        sub = series.between(1.0, 3.0)
        np.testing.assert_array_equal(sub.times, [1.0, 2.0])

    def test_shifted_to(self):
        series = EventSeries(epoch=EPOCH, times=np.array([60.0]), values=np.array([5.0]))
        shifted = series.shifted_to(EPOCH - timedelta(seconds=60))
        np.testing.assert_allclose(shifted.times, [120.0])

    def test_merge_interleaves(self):
        a = EventSeries(epoch=EPOCH, times=np.array([1.0, 3.0]), values=np.array([1, 3.0]))
        b = EventSeries(epoch=EPOCH, times=np.array([2.0]), values=np.array([2.0]))
        merged = a.merge(b)
        np.testing.assert_array_equal(merged.values, [1, 2, 3])

    def test_merge_duplicate_times_rejected(self):
        a = EventSeries(epoch=EPOCH, times=np.array([1.0]), values=np.array([1.0]))
        b = EventSeries(epoch=EPOCH, times=np.array([1.0]), values=np.array([2.0]))
        with pytest.raises(DataError):
            a.merge(b)


class TestUniformSeries:
    def test_length_mismatch(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=4)
        with pytest.raises(DataError):
            UniformSeries(axis=axis, values=np.zeros(5))

    def test_channel_access(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=3)
        series = UniformSeries(axis=axis, values=np.arange(6.0).reshape(3, 2), names=("a", "b"))
        np.testing.assert_array_equal(series.channel("b"), [1, 3, 5])
        with pytest.raises(DataError):
            series.channel("zz")

    def test_missing_fraction(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=4)
        values = np.array([1.0, np.nan, 3.0, np.nan])
        assert UniformSeries(axis=axis, values=values).missing_fraction() == pytest.approx(0.5)

    def test_window(self):
        axis = TimeAxis(epoch=EPOCH, period=900.0, count=10)
        series = UniformSeries(axis=axis, values=np.arange(10.0))
        window = series.window(2, 5)
        np.testing.assert_array_equal(window.values, [2, 3, 4])
        assert len(window.axis) == 3


def test_iter_days():
    axis = TimeAxis(epoch=datetime(2013, 1, 31, 22, 0), period=3600.0, count=5)
    days = dict(iter_days(axis))
    assert sorted(days) == [0, 1]
    assert days[0].tolist() == [0, 1]
    assert days[1].tolist() == [2, 3, 4]
