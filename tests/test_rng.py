"""Tests for deterministic RNG derivation."""

import numpy as np
import pytest

from repro import rng as rng_mod


class TestAsGenerator:
    def test_none_uses_default_seed(self):
        a = rng_mod.as_generator(None).integers(0, 2**31)
        b = rng_mod.as_generator(rng_mod.DEFAULT_SEED).integers(0, 2**31)
        assert a == b

    def test_int_seed_reproducible(self):
        assert rng_mod.as_generator(42).random() == rng_mod.as_generator(42).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_mod.as_generator(gen) is gen

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            rng_mod.as_generator("not-a-seed")


class TestDerive:
    def test_same_label_same_stream(self):
        a = rng_mod.derive(1, "weather").random(5)
        b = rng_mod.derive(1, "weather").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_differ(self):
        a = rng_mod.derive(1, "weather").random(5)
        b = rng_mod.derive(1, "occupancy").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng_mod.derive(1, "weather").random(5)
        b = rng_mod.derive(2, "weather").random(5)
        assert not np.array_equal(a, b)

    def test_index_discriminates(self):
        a = rng_mod.derive(1, "sensor", index=3).random(5)
        b = rng_mod.derive(1, "sensor", index=4).random(5)
        assert not np.array_equal(a, b)

    def test_index_none_vs_zero_differ(self):
        a = rng_mod.derive(1, "sensor").random()
        b = rng_mod.derive(1, "sensor", index=0).random()
        assert a != b


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = rng_mod.spawn_seeds(5, "fleet", 10)
        assert len(seeds) == 10
        assert seeds == rng_mod.spawn_seeds(5, "fleet", 10)

    def test_all_distinct(self):
        seeds = rng_mod.spawn_seeds(5, "fleet", 64)
        assert len(set(seeds)) == 64

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            rng_mod.spawn_seeds(5, "fleet", -1)
