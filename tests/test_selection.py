"""Tests for sensor-selection strategies and their evaluation."""

import numpy as np
import pytest

from repro.cluster.spectral import ClusteringResult
from repro.data.modes import OCCUPIED
from repro.errors import SelectionError
from repro.selection.base import SelectionResult
from repro.selection.evaluate import cluster_mean_errors, evaluate_selection, reduced_model_errors
from repro.selection.gp import GaussianField, empirical_covariance, greedy_mutual_information
from repro.selection.placement import gp_selection, thermostat_selection
from repro.selection.random_sel import random_selection
from repro.selection.stratified import near_mean_selection, stratified_random_selection
from tests.test_cluster import two_group_traces
from tests.test_cluster_baselines_quality import make_clustering, traces_dataset


@pytest.fixture
def grouped():
    """Dataset with two clean groups and a clustering that matches."""
    traces = two_group_traces(gap=3.0, n_ticks=1200)
    dataset = traces_dataset(traces)
    clustering = make_clustering(dataset, [0] * 5 + [1] * 5, 2)
    return dataset, clustering


class TestSelectionResult:
    def test_sensors_deduplicated_sorted(self):
        result = SelectionResult(strategy="x", assignment={0: (5, 3), 1: (3,)})
        assert result.sensors() == [3, 5]
        assert result.n_clusters == 2
        assert result.representatives_of(0) == (5, 3)
        with pytest.raises(SelectionError):
            result.representatives_of(9)

    def test_empty_cluster_rejected(self):
        with pytest.raises(SelectionError):
            SelectionResult(strategy="x", assignment={0: ()})


class TestStratified:
    def test_sms_picks_near_mean_sensor(self, grouped):
        dataset, clustering = grouped
        selection = near_mean_selection(clustering, dataset)
        assert selection.strategy == "SMS"
        assert selection.n_clusters == 2
        for cluster in range(2):
            (rep,) = selection.representatives_of(cluster)
            assert clustering.label_of(rep) == cluster

    def test_sms_beats_worst_member(self, grouped):
        """SMS's representative is at least as good a stand-in as the
        cluster's worst member."""
        dataset, clustering = grouped
        # Make sensor 5 (cluster 0) artificially offset.
        dataset.temperatures[:, 4] += 1.5
        selection = near_mean_selection(clustering, dataset)
        assert selection.representatives_of(0)[0] != 5

    def test_srs_respects_clusters(self, grouped):
        dataset, clustering = grouped
        for seed in range(5):
            selection = stratified_random_selection(clustering, seed=seed)
            for cluster in range(2):
                (rep,) = selection.representatives_of(cluster)
                assert clustering.label_of(rep) == cluster

    def test_srs_multiple_per_cluster_distinct(self, grouped):
        _, clustering = grouped
        selection = stratified_random_selection(clustering, seed=0, n_per_cluster=3)
        for cluster in range(2):
            reps = selection.representatives_of(cluster)
            assert len(set(reps)) == 3

    def test_srs_count_capped_at_cluster_size(self, grouped):
        _, clustering = grouped
        selection = stratified_random_selection(clustering, seed=0, n_per_cluster=99)
        assert len(selection.representatives_of(0)) == 5

    def test_n_per_cluster_validation(self, grouped):
        dataset, clustering = grouped
        with pytest.raises(SelectionError):
            near_mean_selection(clustering, dataset, n_per_cluster=0)


class TestRandomSelection:
    def test_ignores_cluster_boundaries_sometimes(self, grouped):
        """Across many draws, RS must sometimes hand a cluster a sensor
        from the other group — that is its defining failure mode."""
        _, clustering = grouped
        mismatched = 0
        for seed in range(30):
            selection = random_selection(clustering, seed=seed)
            for cluster in range(2):
                (rep,) = selection.representatives_of(cluster)
                if clustering.label_of(rep) != cluster:
                    mismatched += 1
        assert mismatched > 0

    def test_no_duplicate_draws(self, grouped):
        _, clustering = grouped
        selection = random_selection(clustering, seed=1, n_per_cluster=3)
        sensors = [s for reps in selection.assignment.values() for s in reps]
        assert len(sensors) == len(set(sensors)) == 6

    def test_too_many_requested(self, grouped):
        _, clustering = grouped
        with pytest.raises(SelectionError):
            random_selection(clustering, seed=1, n_per_cluster=6)


class TestGaussianProcess:
    def test_empirical_covariance_psd(self):
        traces = two_group_traces()
        cov = empirical_covariance(traces)
        eigenvalues = np.linalg.eigvalsh(cov)
        assert eigenvalues.min() >= 0.0

    def test_conditional_variance_decreases(self):
        cov = empirical_covariance(two_group_traces())
        field = GaussianField(cov)
        unconditioned = field.conditional_variance(0, [])
        conditioned = field.conditional_variance(0, [1, 2])
        assert conditioned <= unconditioned + 1e-9

    def test_greedy_mi_select_count(self):
        field = GaussianField(empirical_covariance(two_group_traces()))
        selected = greedy_mutual_information(field, 3)
        assert len(selected) == len(set(selected)) == 3

    def test_greedy_mi_validation(self):
        field = GaussianField(empirical_covariance(two_group_traces()))
        with pytest.raises(SelectionError):
            greedy_mutual_information(field, 99)

    def test_predict_interpolates(self):
        cov = empirical_covariance(two_group_traces())
        field = GaussianField(cov)
        # Observing a strongly correlated neighbour moves the posterior.
        posterior = field.predict([0], [1], np.array([1.0]))
        assert abs(posterior[0]) > 0.1


class TestPlacement:
    def test_gp_selection_assigns_all_clusters(self, grouped):
        dataset, clustering = grouped
        selection = gp_selection(clustering, dataset)
        assert selection.strategy == "GP"
        assert set(selection.assignment) == {0, 1}

    def test_thermostat_selection_requires_thermostats(self, grouped):
        dataset, clustering = grouped
        with pytest.raises(SelectionError):
            thermostat_selection(clustering, dataset)  # IDs 40/41 absent

    def test_thermostat_selection_real_dataset(self, month_dataset):
        from repro.cluster import cluster_sensors
        from repro.geometry.layout import THERMOSTAT_IDS

        train, _ = month_dataset.split_half_days(OCCUPIED)
        wireless = train.select_sensors(
            [s for s in train.sensor_ids if s not in THERMOSTAT_IDS]
        )
        clustering = cluster_sensors(wireless, method="correlation", k=2)
        selection = thermostat_selection(clustering, train)
        chosen = selection.sensors()
        assert set(chosen) <= set(THERMOSTAT_IDS)
        # With two thermostats and two clusters the matching is distinct.
        assert len(chosen) == 2


class TestEvaluation:
    def test_perfect_representative_zero_error(self, grouped):
        dataset, clustering = grouped
        # A cluster of identical sensors: any member is a perfect stand-in.
        dataset.temperatures[:, :5] = dataset.temperatures[:, [0]]
        selection = SelectionResult(strategy="x", assignment={0: (1,), 1: (6,)})
        errors = cluster_mean_errors(selection, clustering, dataset)
        cluster0 = errors[: dataset.n_samples]
        assert np.nanmax(cluster0) < 1e-9

    def test_cross_zone_representative_large_error(self, grouped):
        dataset, clustering = grouped
        good = SelectionResult(strategy="x", assignment={0: (1,), 1: (6,)})
        swapped = SelectionResult(strategy="x", assignment={0: (6,), 1: (1,)})
        good_p99 = evaluate_selection(good, clustering, dataset, mode=None)
        swapped_p99 = evaluate_selection(swapped, clustering, dataset, mode=None)
        assert swapped_p99 > good_p99 + 1.0

    def test_cluster_count_mismatch(self, grouped):
        dataset, clustering = grouped
        selection = SelectionResult(strategy="x", assignment={0: (1,)})
        with pytest.raises(SelectionError):
            cluster_mean_errors(selection, clustering, dataset)

    def test_averaging_reduces_error(self, grouped):
        dataset, clustering = grouped
        one = SelectionResult(strategy="x", assignment={0: (1,), 1: (6,)})
        many = SelectionResult(strategy="x", assignment={0: (1, 2, 3), 1: (6, 7, 8)})
        assert evaluate_selection(many, clustering, dataset, mode=None) <= evaluate_selection(
            one, clustering, dataset, mode=None
        )

    def test_reduced_model_errors_real_dataset(self, month_dataset):
        from repro.cluster import cluster_sensors
        from repro.geometry.layout import THERMOSTAT_IDS

        wireless = month_dataset.select_sensors(
            [s for s in month_dataset.sensor_ids if s not in THERMOSTAT_IDS]
        )
        train, valid = wireless.split_half_days(OCCUPIED)
        clustering = cluster_sensors(train, method="correlation", k=2)
        selection = near_mean_selection(clustering, train)
        errors = reduced_model_errors(
            selection, clustering, train, valid, order=2, mode=OCCUPIED, ridge=1.0
        )
        assert errors.size > 100
        assert np.isfinite(errors).all()
        assert np.percentile(errors, 99) < 5.0
