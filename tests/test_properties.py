"""Property-based tests (hypothesis) on core data structures and invariants."""

from datetime import datetime

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster.eigengap import choose_k_by_eigengap
from repro.cluster.kmeans import kmeans
from repro.cluster.laplacian import graph_laplacian, laplacian_eigensystem
from repro.comfort.pmv import pmv_at_temperature, ppd_from_pmv
from repro.data.gaps import find_segments
from repro.data.modes import OCCUPIED, UNOCCUPIED, Mode
from repro.data.resample import resample_last_value
from repro.data.timeseries import EventSeries, TimeAxis
from repro.sysid.metrics import empirical_cdf, rms
from repro.sysid.models import FirstOrderModel

EPOCH = datetime(2013, 1, 31)

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestTimeAxisProperties:
    @given(
        period_s=st.floats(min_value=1.0, max_value=7200.0),
        count=st.integers(min_value=1, max_value=500),
    )
    def test_seconds_strictly_increasing_and_spaced(self, period_s, count):
        axis = TimeAxis(epoch=EPOCH, period=period_s, count=count)
        seconds = axis.seconds()
        assert seconds.size == count
        if count > 1:
            np.testing.assert_allclose(np.diff(seconds), period_s)

    @given(
        period_s=st.floats(min_value=60.0, max_value=3600.0),
        count=st.integers(min_value=2, max_value=300),
        index=st.integers(min_value=0, max_value=299),
    )
    def test_index_datetime_roundtrip(self, period_s, count, index):
        assume(index < count)
        axis = TimeAxis(epoch=EPOCH, period=period_s, count=count)
        assert axis.index_of(axis.datetime_at(index)) == index

    @given(count=st.integers(min_value=1, max_value=400))
    def test_hours_of_day_in_range(self, count):
        axis = TimeAxis(epoch=EPOCH, period=937.0, count=count)
        hours = axis.hours_of_day()
        assert (hours >= 0.0).all() and (hours < 24.0).all()


class TestModeProperties:
    @given(hour=st.floats(min_value=0.0, max_value=23.999))
    def test_occupied_unoccupied_partition(self, hour):
        assert OCCUPIED.contains_hour(hour) != UNOCCUPIED.contains_hour(hour)

    @given(
        start=st.floats(min_value=0.0, max_value=23.0),
        duration_h=st.floats(min_value=0.5, max_value=23.0),
    )
    def test_duration_matches_window(self, start, duration_h):
        end = (start + duration_h) % 24.0
        mode = Mode(name="m", start_hour=start, end_hour=end)
        assert mode.duration_hours == pytest.approx(duration_h, abs=1e-6) or (
            # wrap-around degenerate case when end == start
            abs(duration_h - 24.0) < 1e-6
        )


class TestResampleProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e5),
                finite_floats,
            ),
            min_size=1,
            max_size=40,
            unique_by=lambda pair: pair[0],
        )
    )
    def test_resampled_values_come_from_events(self, data):
        data = sorted(data)
        times = np.array([t for t, _ in data])
        values = np.array([v for _, v in data])
        series = EventSeries(epoch=EPOCH, times=times, values=values)
        axis = TimeAxis(epoch=EPOCH, period=500.0, count=50)
        out = resample_last_value(series, axis)
        finite = out[np.isfinite(out)]
        assert set(np.round(finite, 9)) <= set(np.round(values, 9))

    @given(
        data=st.lists(
            st.tuples(st.floats(min_value=0.0, max_value=1e4), finite_floats),
            min_size=1,
            max_size=30,
            unique_by=lambda pair: pair[0],
        ),
        staleness_s=st.floats(min_value=1.0, max_value=1e4),
    )
    def test_staleness_only_removes(self, data, staleness_s):
        data = sorted(data)
        series = EventSeries(
            epoch=EPOCH,
            times=np.array([t for t, _ in data]),
            values=np.array([v for _, v in data]),
        )
        axis = TimeAxis(epoch=EPOCH, period=300.0, count=40)
        unbounded = resample_last_value(series, axis)
        bounded = resample_last_value(series, axis, max_staleness_s=staleness_s)
        finite = np.isfinite(bounded)
        np.testing.assert_array_equal(bounded[finite], unbounded[finite])
        assert finite.sum() <= np.isfinite(unbounded).sum()


class TestSegmentProperties:
    @given(
        mask=hnp.arrays(dtype=bool, shape=st.integers(min_value=0, max_value=200)),
        min_length=st.integers(min_value=1, max_value=5),
    )
    def test_segments_cover_exactly_long_valid_runs(self, mask, min_length):
        values = np.where(mask, 1.0, np.nan)
        segments = find_segments(values, min_length=min_length)
        covered = np.zeros(mask.size, dtype=bool)
        for segment in segments:
            assert len(segment) >= min_length
            assert mask[segment.start : segment.stop].all()
            # Maximality: the run cannot extend either way.
            if segment.start > 0:
                assert not mask[segment.start - 1]
            if segment.stop < mask.size:
                assert not mask[segment.stop]
            covered[segment.start : segment.stop] = True
        # Any uncovered valid tick belongs to a run shorter than min_length.
        uncovered = mask & ~covered
        remaining = find_segments(np.where(uncovered, 1.0, np.nan), min_length=min_length)
        assert remaining == []


class TestMetricsProperties:
    @given(
        values=hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=60),
            elements=finite_floats,
        )
    )
    def test_cdf_properties(self, values):
        xs, f = empirical_cdf(values)
        assert (np.diff(xs) >= 0).all()
        assert f[-1] == pytest.approx(1.0)
        assert (f > 0).all()

    @given(
        values=hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=60),
            elements=finite_floats,
        ),
        scale=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_rms_scales_linearly(self, values, scale):
        assert rms(values * scale) == pytest.approx(scale * rms(values), rel=1e-9, abs=1e-9)


class TestLaplacianProperties:
    @given(
        weights=hnp.arrays(
            dtype=float,
            shape=st.integers(min_value=3, max_value=12).map(lambda n: (n, n)),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=40)
    def test_laplacian_psd_with_zero_row_sums(self, weights):
        weights = (weights + weights.T) / 2.0
        np.fill_diagonal(weights, 0.0)
        lap = graph_laplacian(weights)
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-9)
        eigenvalues, _ = laplacian_eigensystem(weights)
        assert eigenvalues.min() >= -1e-9
        # Eigengap selection always returns a k in range.
        k, _ = choose_k_by_eigengap(eigenvalues)
        assert 2 <= k <= weights.shape[0] - 1


class TestKMeansProperties:
    @given(
        points=hnp.arrays(
            dtype=float,
            shape=st.tuples(
                st.integers(min_value=4, max_value=25), st.integers(min_value=1, max_value=3)
            ),
            elements=finite_floats,
        ),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_kmeans_partitions(self, points, k):
        assume(k <= points.shape[0])
        result = kmeans(points, k, seed=0, n_init=2)
        assert result.labels.shape == (points.shape[0],)
        assert set(result.labels) == set(range(k))
        assert result.inertia >= 0.0


class TestModelProperties:
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        steps=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=30)
    def test_simulation_is_linear_in_inputs(self, seed, steps):
        """Superposition: simulate(u1 + u2) - simulate(0) equals
        (simulate(u1) - simulate(0)) + (simulate(u2) - simulate(0))."""
        gen = np.random.default_rng(seed)
        a = 0.8 * np.eye(2) + 0.05 * gen.random((2, 2))
        b = gen.standard_normal((2, 3)) * 0.1
        model = FirstOrderModel(A=a, B=b)
        t0 = np.zeros((1, 2))
        u1 = gen.random((steps, 3))
        u2 = gen.random((steps, 3))
        zero = np.zeros((steps, 3))
        base = model.simulate(t0, zero)
        r1 = model.simulate(t0, u1) - base
        r2 = model.simulate(t0, u2) - base
        r12 = model.simulate(t0, u1 + u2) - base
        np.testing.assert_allclose(r12, r1 + r2, atol=1e-9)


class TestComfortProperties:
    @given(temp_c=st.floats(min_value=10.0, max_value=32.0))
    def test_ppd_bounded(self, temp_c):
        vote = pmv_at_temperature(temp_c)
        dissatisfied = ppd_from_pmv(vote)
        assert 5.0 <= dissatisfied <= 100.0

    @given(
        t1=st.floats(min_value=12.0, max_value=30.0),
        t2=st.floats(min_value=12.0, max_value=30.0),
    )
    def test_pmv_monotone(self, t1, t2):
        assume(t1 < t2)
        assert pmv_at_temperature(t1) < pmv_at_temperature(t2)
