"""Tests for the semester event calendar."""

from datetime import datetime, timedelta

import pytest

from repro.errors import ConfigurationError
from repro.simulation.calendar import (
    Event,
    EventCalendar,
    semester_calendar,
)


class TestEvent:
    def test_end_time(self):
        event = Event(name="x", start=datetime(2013, 2, 1, 10), duration_minutes=80, attendance=50)
        assert event.end == datetime(2013, 2, 1, 11, 20)

    def test_overlaps(self):
        event = Event(name="x", start=datetime(2013, 2, 1, 10), duration_minutes=60, attendance=5)
        assert event.overlaps(datetime(2013, 2, 1, 10, 30), datetime(2013, 2, 1, 12))
        assert not event.overlaps(datetime(2013, 2, 1, 11), datetime(2013, 2, 1, 12))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Event(name="x", start=datetime(2013, 2, 1), duration_minutes=0, attendance=1)
        with pytest.raises(ConfigurationError):
            Event(name="x", start=datetime(2013, 2, 1), duration_minutes=10, attendance=-1)
        with pytest.raises(ConfigurationError):
            Event(name="x", start=datetime(2013, 2, 1), duration_minutes=10, attendance=1, kind="party")


class TestEventCalendar:
    def test_sorted_on_construction(self):
        e1 = Event(name="late", start=datetime(2013, 2, 2, 10), duration_minutes=60, attendance=5)
        e2 = Event(name="early", start=datetime(2013, 2, 1, 10), duration_minutes=60, attendance=5)
        calendar = EventCalendar(events=[e1, e2])
        assert calendar.events[0].name == "early"

    def test_active_at_with_margin(self):
        event = Event(name="x", start=datetime(2013, 2, 1, 10), duration_minutes=60, attendance=5)
        calendar = EventCalendar(events=[event])
        assert not calendar.active_at(datetime(2013, 2, 1, 9, 50))
        assert calendar.active_at(datetime(2013, 2, 1, 9, 50), margin_minutes=15)
        assert calendar.active_at(datetime(2013, 2, 1, 10, 30))

    def test_on_day(self):
        event = Event(name="x", start=datetime(2013, 2, 1, 10), duration_minutes=60, attendance=5)
        calendar = EventCalendar(events=[event])
        assert len(calendar.on_day(datetime(2013, 2, 1, 23))) == 1
        assert calendar.on_day(datetime(2013, 2, 2)) == []


class TestSemesterCalendar:
    @pytest.fixture(scope="class")
    def calendar(self):
        return semester_calendar(datetime(2013, 1, 31), datetime(2013, 5, 8), seed=11)

    def test_deterministic(self):
        a = semester_calendar(datetime(2013, 2, 1), datetime(2013, 2, 28), seed=1)
        b = semester_calendar(datetime(2013, 2, 1), datetime(2013, 2, 28), seed=1)
        assert [(e.name, e.start, e.attendance) for e in a] == [
            (e.name, e.start, e.attendance) for e in b
        ]

    def test_seed_changes_calendar(self):
        a = semester_calendar(datetime(2013, 2, 1), datetime(2013, 2, 28), seed=1)
        b = semester_calendar(datetime(2013, 2, 1), datetime(2013, 2, 28), seed=2)
        assert [(e.start, e.attendance) for e in a] != [(e.start, e.attendance) for e in b]

    def test_busy_semester(self, calendar):
        # ~10 weekly slots over 14 weeks, minus cancellations/breaks.
        assert len(calendar) > 80

    def test_friday_seminar_fills_room(self, calendar):
        seminars = [e for e in calendar if e.kind == "seminar"]
        assert seminars
        for seminar in seminars:
            assert seminar.start.weekday() == 4
            assert seminar.presentation
            assert seminar.attendance >= 50

    def test_attendance_capped_at_capacity(self, calendar):
        assert all(1 <= e.attendance <= 90 for e in calendar)

    def test_spring_break_has_no_lectures(self, calendar):
        march = [e for e in calendar if e.kind == "lecture" and e.start.month == 3]
        # Find the second full week of March (the break).
        march_first = datetime(2013, 3, 1)
        first_monday = march_first + timedelta(days=(7 - march_first.weekday()) % 7)
        break_days = {(first_monday + timedelta(days=7 + i)).date() for i in range(5)}
        assert not [e for e in march if e.start.date() in break_days]

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            semester_calendar(datetime(2013, 5, 1), datetime(2013, 4, 1))
