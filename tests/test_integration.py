"""End-to-end integration tests across all subsystems.

These cover the paths a user exercises: synthetic trace → preprocessing
→ splits → full-model identification → clustering → selection → reduced
model, and the invariants that must hold across that whole chain.
"""

import numpy as np
import pytest

from repro import (
    OCCUPIED,
    PipelineConfig,
    ThermalModelingPipeline,
    cluster_sensors,
    fit_and_evaluate,
)
from repro.data.io import load_dataset_csv, save_dataset_csv
from repro.data.modes import UNOCCUPIED
from repro.geometry.layout import BACK_SENSOR_IDS, FRONT_SENSOR_IDS, THERMOSTAT_IDS
from repro.sysid.evaluation import EvaluationOptions


class TestDataChain:
    def test_sensing_preserves_spatial_pattern(self, month_output):
        """The cool-front / warm-back structure survives sensing noise,
        quantization and resampling into the assembled dataset."""
        ds = month_output.analysis_dataset
        occupancy = ds.input_channel("occupancy")
        busy = np.isfinite(occupancy) & (occupancy > 50)
        busy &= np.isfinite(ds.temperatures).all(axis=1)
        assert busy.any()
        front = np.mean(
            [ds.temperature_of(s)[busy].mean() for s in FRONT_SENSOR_IDS]
        )
        back = np.mean([ds.temperature_of(s)[busy].mean() for s in BACK_SENSOR_IDS])
        assert back > front + 0.3

    def test_csv_roundtrip_preserves_analysis(self, week_output, tmp_path):
        ds = week_output.analysis_dataset
        save_dataset_csv(ds, tmp_path / "week")
        loaded = load_dataset_csv(tmp_path / "week")
        assert loaded.usable_days(OCCUPIED) == ds.usable_days(OCCUPIED)
        assert len(loaded.segments(mode=OCCUPIED)) == len(ds.segments(mode=OCCUPIED))


class TestModelingChain:
    def test_paper_protocol_table1_shape(self, month_dataset):
        """Second order beats first order; occupied is harder than
        unoccupied — the paper's Table I ordering end to end."""
        results = {}
        for mode, options in (
            (OCCUPIED, EvaluationOptions(start_offset_hours=1.5, horizon_hours=13.5)),
            (UNOCCUPIED, EvaluationOptions(start_offset_hours=0.5, horizon_hours=7.5)),
        ):
            train, valid = month_dataset.split_half_days(mode)
            for order in (1, 2):
                _, ev = fit_and_evaluate(
                    train, valid, order=order, mode=mode, evaluation=options
                )
                results[(mode.name, order)] = ev.overall_percentile(90)
        assert results[("occupied", 2)] < results[("occupied", 1)]
        assert results[("unoccupied", 2)] <= results[("unoccupied", 1)] + 0.05
        assert results[("unoccupied", 2)] < results[("occupied", 2)]

    def test_clustering_recovers_physical_zones(self, month_dataset):
        wireless = month_dataset.select_sensors(
            [s for s in month_dataset.sensor_ids if s not in THERMOSTAT_IDS]
        )
        train, _ = wireless.split_half_days(OCCUPIED)
        clustering = cluster_sensors(train, method="correlation")
        assert clustering.k == 2
        groups = [set(clustering.members(c)) for c in range(2)]
        assert set(FRONT_SENSOR_IDS) in groups
        assert set(BACK_SENSOR_IDS) in groups

    def test_full_pipeline_beats_thermostats(self, month_dataset):
        """The headline claim: two well-chosen sensors track the room's
        thermal zones far better than the HVAC's own two thermostats."""
        train, valid = month_dataset.split_half_days(OCCUPIED)
        sms = ThermalModelingPipeline(
            PipelineConfig(n_clusters=2, selection_strategy="sms")
        )
        wireless_train = train.select_sensors(
            [s for s in train.sensor_ids if s not in THERMOSTAT_IDS]
        )
        wireless_valid = valid.select_sensors(
            [s for s in valid.sensor_ids if s not in THERMOSTAT_IDS]
        )
        sms.fit(wireless_train)
        sms_error = sms.evaluate(wireless_valid).selection_percentile()

        thermostats = ThermalModelingPipeline(
            PipelineConfig(n_clusters=2, selection_strategy="thermostats")
        )
        thermostats.fit(train)
        thermostat_error = thermostats.evaluate(valid).selection_percentile()
        assert sms_error < 0.6 * thermostat_error

    def test_reduced_model_is_much_smaller(self, month_dataset):
        """Model simplification: 2 sensors instead of 27 shrinks the
        parameter count by two orders of magnitude."""
        train, _ = month_dataset.split_half_days(OCCUPIED)
        full = ThermalModelingPipeline(PipelineConfig(n_clusters=2))
        result = full.fit(
            train.select_sensors(
                [s for s in train.sensor_ids if s not in THERMOSTAT_IDS]
            )
        )
        p_small = result.model.n_sensors
        p_full = train.n_sensors
        small_params = p_small * (2 * p_small + 7)
        full_params = p_full * (2 * p_full + 7)
        assert small_params < full_params / 50


class TestDeterminism:
    def test_whole_chain_is_seed_deterministic(self, week_output):
        from repro.data.synth import SynthConfig, clear_cache, generate
        from repro.simulation.simulator import SimulationConfig

        clear_cache()
        again = generate(SynthConfig(simulation=SimulationConfig(days=7.0)), use_cache=False)
        np.testing.assert_array_equal(
            again.analysis_dataset.temperatures,
            week_output.analysis_dataset.temperatures,
        )
        np.testing.assert_array_equal(
            again.analysis_dataset.inputs, week_output.analysis_dataset.inputs
        )
