"""Tests for event-stream resampling."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.data.resample import resample_last_value, resample_many, resample_mean
from repro.data.timeseries import EventSeries, TimeAxis
from repro.errors import DataError

EPOCH = datetime(2013, 1, 31)


def make_series(times, values, epoch=EPOCH, name="s"):
    return EventSeries(epoch=epoch, times=np.asarray(times, float), values=np.asarray(values, float), name=name)


class TestResampleLastValue:
    def test_holds_last_value(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=5)
        series = make_series([0.0, 25.0], [1.0, 2.0])
        out = resample_last_value(series, axis)
        np.testing.assert_array_equal(out, [1, 1, 1, 2, 2])

    def test_nan_before_first_event(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=3)
        out = resample_last_value(make_series([15.0], [9.0]), axis)
        assert np.isnan(out[0]) and np.isnan(out[1]) and out[2] == 9.0

    def test_staleness_bound(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=6)
        out = resample_last_value(make_series([0.0], [1.0]), axis, max_staleness_s=25.0)
        np.testing.assert_array_equal(np.isnan(out), [False, False, False, True, True, True])

    def test_staleness_must_be_positive(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=2)
        with pytest.raises(DataError):
            resample_last_value(make_series([0.0], [1.0]), axis, max_staleness_s=0.0)

    def test_empty_series_all_nan(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=4)
        out = resample_last_value(make_series([], []), axis)
        assert np.isnan(out).all()

    def test_epoch_shift_respected(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=3)
        shifted = make_series([10.0], [7.0], epoch=EPOCH - timedelta(seconds=10))
        out = resample_last_value(shifted, axis)
        np.testing.assert_array_equal(out, [7, 7, 7])


class TestResampleMean:
    def test_window_means(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=3)
        series = make_series([0.0, 5.0, 12.0], [1.0, 3.0, 10.0])
        out = resample_mean(series, axis)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == pytest.approx(10.0)
        assert np.isnan(out[2])

    def test_min_events(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=2)
        series = make_series([0.0, 2.0, 11.0], [1.0, 3.0, 5.0])
        out = resample_mean(series, axis, min_events=2)
        assert out[0] == pytest.approx(2.0)
        assert np.isnan(out[1])

    def test_min_events_validation(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=2)
        with pytest.raises(DataError):
            resample_mean(make_series([0.0], [1.0]), axis, min_events=0)

    def test_events_before_axis_ignored(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=2)
        series = make_series([-5.0, 1.0], [100.0, 2.0], epoch=EPOCH)
        out = resample_mean(series, axis)
        assert out[0] == pytest.approx(2.0)


class TestResampleMany:
    def test_stacks_channels(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=2)
        a = make_series([0.0], [1.0], name="a")
        b = make_series([0.0], [2.0], name="b")
        out = resample_many([a, b], axis)
        assert out.names == ("a", "b")
        np.testing.assert_array_equal(out.values, [[1, 2], [1, 2]])

    def test_empty_list_rejected(self):
        axis = TimeAxis(epoch=EPOCH, period=10.0, count=2)
        with pytest.raises(DataError):
            resample_many([], axis)
