"""Tests for similarity graphs, Laplacians, eigengap and spectral clustering."""

import numpy as np
import pytest

from repro.cluster.eigengap import choose_k_by_eigengap, log_eigenvalues
from repro.cluster.kmeans import kmeans
from repro.cluster.laplacian import (
    graph_laplacian,
    laplacian_eigensystem,
    n_connected_components,
)
from repro.cluster.similarity import (
    SimilarityOptions,
    correlation_matrix,
    correlation_similarity,
    euclidean_similarity,
    pairwise_euclidean,
    remove_network_mean,
)
from repro.cluster.spectral import spectral_clustering
from repro.errors import ClusteringError


def two_group_traces(n_ticks=400, n_per_group=5, gap=3.0, seed=0):
    """Two groups of traces: shared diurnal + opposite-phase residuals."""
    gen = np.random.default_rng(seed)
    t = np.arange(n_ticks)
    common = 20.0 + np.sin(2 * np.pi * t / 96)
    residual = 0.6 * np.sin(2 * np.pi * t / 60)
    group_a = common[:, None] + residual[:, None] + 0.05 * gen.standard_normal((n_ticks, n_per_group))
    group_b = common[:, None] - residual[:, None] + gap + 0.05 * gen.standard_normal((n_ticks, n_per_group))
    return np.hstack([group_a, group_b])


class TestPairwiseEuclidean:
    def test_symmetric_zero_diagonal(self):
        traces = two_group_traces()
        d = pairwise_euclidean(traces)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_group_structure(self):
        traces = two_group_traces()
        d = pairwise_euclidean(traces)
        within = d[0, 1]
        across = d[0, 5]
        assert across > 2 * within

    def test_insufficient_overlap_is_nan(self):
        traces = two_group_traces()
        traces[:, 0] = np.nan
        d = pairwise_euclidean(traces)
        assert np.isnan(d[0, 1])


class TestCorrelationMatrix:
    def test_self_correlation_is_one(self):
        corr = correlation_matrix(two_group_traces())
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_common_mode_removal_exposes_structure(self):
        traces = two_group_traces()
        raw = correlation_matrix(traces)
        residual = correlation_matrix(traces, remove_common_mode=True)
        # Raw: the shared diurnal cycle keeps cross-group correlation positive.
        assert raw[0, 5] > 0.2
        # Residual: opposite-phase groups anticorrelate.
        assert residual[0, 5] < -0.3
        assert residual[0, 1] > 0.3

    def test_constant_column_zero_correlation(self):
        traces = two_group_traces()
        traces[:, 0] = 20.0
        corr = correlation_matrix(traces)
        assert corr[0, 1] == 0.0

    def test_remove_network_mean_centres(self):
        traces = two_group_traces()
        residual = remove_network_mean(traces)
        np.testing.assert_allclose(np.nanmean(residual, axis=1), 0.0, atol=1e-9)


class TestSimilarities:
    def test_euclidean_similarity_in_unit_range(self):
        weights = euclidean_similarity(two_group_traces())
        assert weights.min() >= 0.0 and weights.max() <= 1.0
        np.testing.assert_allclose(np.diag(weights), 0.0)

    def test_correlation_similarity_clips_negative(self):
        weights = correlation_similarity(two_group_traces())
        assert weights.min() >= 0.0

    def test_edge_threshold(self):
        options = SimilarityOptions(edge_threshold=0.9)
        weights = euclidean_similarity(two_group_traces(), options)
        assert ((weights == 0.0) | (weights >= 0.9)).all()

    def test_options_validation(self):
        with pytest.raises(ClusteringError):
            SimilarityOptions(sigma=-1.0)
        with pytest.raises(ClusteringError):
            SimilarityOptions(min_common_samples=1)


class TestLaplacian:
    def test_rows_sum_to_zero(self):
        weights = euclidean_similarity(two_group_traces())
        lap = graph_laplacian(weights)
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-9)

    def test_psd(self):
        weights = euclidean_similarity(two_group_traces())
        eigenvalues, _ = laplacian_eigensystem(weights)
        assert eigenvalues.min() >= 0.0
        assert eigenvalues[0] == pytest.approx(0.0, abs=1e-9)

    def test_connected_components(self):
        block = np.array(
            [
                [0, 1, 0, 0],
                [1, 0, 0, 0],
                [0, 0, 0, 1],
                [0, 0, 1, 0],
            ],
            dtype=float,
        )
        assert n_connected_components(block) == 2

    def test_validation(self):
        with pytest.raises(ClusteringError):
            graph_laplacian(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ClusteringError):
            graph_laplacian(np.array([[0.0, 1.0], [2.0, 0.0]]))


class TestEigengap:
    def test_two_block_graph_picks_two(self):
        weights = correlation_similarity(two_group_traces())
        eigenvalues, _ = laplacian_eigensystem(weights)
        k, _ = choose_k_by_eigengap(eigenvalues)
        assert k == 2

    def test_log_eigenvalues_floor(self):
        logs = log_eigenvalues(np.array([0.0, 1.0]))
        assert np.isfinite(logs).all()
        assert logs[0] < logs[1]

    def test_negative_rejected(self):
        with pytest.raises(ClusteringError):
            log_eigenvalues(np.array([-1.0]))

    def test_range_validation(self):
        with pytest.raises(ClusteringError):
            choose_k_by_eigengap(np.array([0.0, 1.0]))


class TestKMeans:
    def test_separated_blobs(self):
        gen = np.random.default_rng(1)
        a = gen.normal(0.0, 0.1, size=(20, 2))
        b = gen.normal(5.0, 0.1, size=(20, 2))
        result = kmeans(np.vstack([a, b]), 2, seed=0)
        labels_a = set(result.labels[:20])
        labels_b = set(result.labels[20:])
        assert len(labels_a) == 1 and len(labels_b) == 1 and labels_a != labels_b

    def test_deterministic_given_seed(self):
        points = np.random.default_rng(2).random((30, 3))
        r1 = kmeans(points, 3, seed=7)
        r2 = kmeans(points, 3, seed=7)
        np.testing.assert_array_equal(r1.labels, r2.labels)

    def test_inertia_decreases_with_k(self):
        points = np.random.default_rng(3).random((40, 2))
        inertias = [kmeans(points, k, seed=0).inertia for k in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(inertias, inertias[1:]))

    def test_every_cluster_nonempty(self):
        points = np.random.default_rng(4).random((15, 2))
        result = kmeans(points, 5, seed=0)
        assert set(result.labels) == set(range(5))

    def test_validation(self):
        with pytest.raises(ClusteringError):
            kmeans(np.zeros((3, 2)), 4)
        with pytest.raises(ClusteringError):
            kmeans(np.array([[np.nan, 0.0]]), 1)


class TestSpectralClustering:
    def test_recovers_groups(self):
        traces = two_group_traces()
        weights = correlation_similarity(traces)
        labels, k, eigenvalues, gaps = spectral_clustering(weights, seed=0)
        assert k == 2
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_forced_k(self):
        weights = correlation_similarity(two_group_traces())
        labels, k, _, _ = spectral_clustering(weights, k=3, seed=0)
        assert k == 3
        assert set(labels) == {0, 1, 2}
