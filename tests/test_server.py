"""Multi-worker serving: supervisor pool, TCP front end, fault injection.

The robustness contract under test: N worker processes answering from
one sealed snapshot must be indistinguishable (byte-for-byte, modulo
wall-clock ``latency_s``) from the single-process service — including
while workers are being killed, hung and respawned mid-stream, and a
mid-run worker kill must lose zero accepted requests.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.errors import ServiceOverloadError, ServingError
from repro.streaming import (
    GateThresholds,
    OnlinePipeline,
    PredictionServer,
    PredictionService,
    ReplaySource,
    ServerConfig,
    ServiceConfig,
    Supervisor,
    WorkerPoolConfig,
    build_request,
    load_snapshot,
    save_snapshot,
)
from repro.streaming.loadtest import LoadTestConfig, run_loadtest

from tests.conftest import make_linear_dataset

SNAPSHOT = "test-server-pool"
MAX_HORIZON = 64

WIDE_GATE = GateThresholds(
    min_plausible_c=-1000.0, max_plausible_c=1000.0, max_step_c=1000.0
)


@pytest.fixture(scope="module")
def dataset():
    return make_linear_dataset(n_days=2.0, noise=0.01)


@pytest.fixture(scope="module", autouse=True)
def sealed_snapshot(dataset):
    """One trained pipeline, sealed under SNAPSHOT for every worker."""
    pipeline = OnlinePipeline(
        dataset.sensor_ids,
        dataset.channels.n_channels,
        order=2,
        gate_thresholds=WIDE_GATE,
    )
    pipeline.run(ReplaySource(dataset))
    key = save_snapshot(SNAPSHOT, pipeline)
    assert key is not None
    return key


def pool_config(**overrides):
    """Fast-timing pool config so failure paths resolve in test time."""
    base = dict(
        n_workers=2,
        snapshot_name=SNAPSHOT,
        max_queue=32,
        max_batch=4,
        max_horizon_ticks=MAX_HORIZON,
        poll_interval_s=0.02,
        liveness_deadline_s=1.5,
        request_timeout_s=5.0,
        max_restarts=3,
        restart_backoff_s=0.05,
        start_timeout_s=120.0,
    )
    base.update(overrides)
    return WorkerPoolConfig(**base)


def strip_latency(payload):
    return {k: v for k, v in payload.items() if k != "latency_s"}


def expected_payloads(payloads):
    """What the single-process PredictionService answers for `payloads`."""
    pipeline = load_snapshot(SNAPSHOT, required=True)
    service = PredictionService(
        pipeline, ServiceConfig(max_queue=64, max_batch=4, max_horizon_ticks=MAX_HORIZON)
    )
    held = pipeline.estimator.last_inputs()
    expected = {}
    for payload in payloads:
        request = build_request(payload, held, str(payload["id"]), MAX_HORIZON)
        service.submit(request)
        for response in service.drain():
            answered = strip_latency(response.to_payload())
            expected[answered["id"]] = answered
    return expected


class TestWorkerPoolConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"max_queue": 0},
            {"max_batch": 0},
            {"request_timeout_s": 0.0},
            {"liveness_deadline_s": 0.0},
            {"max_restarts": -1},
        ],
    )
    def test_invalid_config_raises_typed_error(self, kwargs):
        with pytest.raises(ServingError):
            pool_config(**kwargs)


class TestSupervisor:
    def test_byte_identical_to_single_process_then_clean_drain(self):
        payloads = [{"id": f"r{i}", "horizon_ticks": 4 + i % 3} for i in range(12)]
        supervisor = Supervisor(pool_config())
        try:
            supervisor.start()
            assert supervisor.n_live == 2
            futures = [supervisor.submit(dict(p)) for p in payloads]
            answers = {
                p["id"]: strip_latency(f.result(timeout=30))
                for p, f in zip(payloads, futures)
            }
        finally:
            clean = supervisor.drain(timeout_s=30.0)
        assert clean
        assert answers == expected_payloads(payloads)
        assert supervisor.stats.served == len(payloads)
        assert supervisor.stats.shed == 0
        assert supervisor.stats.failed == 0
        # A drained pool refuses new work with the typed error.
        with pytest.raises(ServingError):
            supervisor.submit({"id": "late", "horizon_ticks": 4})

    def test_worker_kill_mid_run_loses_no_accepted_requests(self):
        payloads = [{"id": f"k{i}", "horizon_ticks": 6} for i in range(30)]
        supervisor = Supervisor(pool_config())
        try:
            supervisor.start()
            futures = [supervisor.submit(dict(p)) for p in payloads]
            killed = supervisor.kill_worker()
            assert killed is not None
            answers = {
                p["id"]: strip_latency(f.result(timeout=30))
                for p, f in zip(payloads, futures)
            }
        finally:
            supervisor.drain(timeout_s=30.0)
        # Every accepted request resolved with real predictions, and the
        # survivors' answers are byte-identical to the single process.
        assert answers == expected_payloads(payloads)
        assert supervisor.stats.served == len(payloads)
        assert supervisor.stats.restarts >= 1
        assert supervisor.stats.failed == 0
        assert supervisor.stats.deadline_misses == 0

    def test_restart_budget_exhausted_downgrades_to_survivors(self):
        supervisor = Supervisor(pool_config(max_restarts=0))
        try:
            supervisor.start()
            killed = supervisor.kill_worker()
            assert killed is not None
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                states = supervisor.worker_states()
                if states[killed] == "failed":
                    break
                time.sleep(0.05)
            assert supervisor.worker_states()[killed] == "failed"
            assert supervisor.n_live == 1
            # The surviving worker keeps serving.
            future = supervisor.submit({"id": "after-downgrade", "horizon_ticks": 4})
            assert "predictions" in future.result(timeout=30)
        finally:
            supervisor.drain(timeout_s=30.0)
        assert supervisor.stats.restarts == 0
        assert supervisor.stats.served == 1

    def test_full_queues_shed_with_typed_overload_error(self):
        supervisor = Supervisor(pool_config(n_workers=1, max_queue=1))
        try:
            supervisor.start()
            # Stall the only worker so the first request stays in flight.
            supervisor.hang_worker(0.5)
            first = supervisor.submit({"id": "held", "horizon_ticks": 4})
            with pytest.raises(ServiceOverloadError):
                supervisor.submit({"id": "shed-me", "horizon_ticks": 4})
            assert supervisor.stats.shed == 1
            # The shed is attributed to the saturated worker too.
            assert supervisor.per_worker_stats()[0]["shed"] == 1
            assert "predictions" in first.result(timeout=30)
        finally:
            supervisor.drain(timeout_s=30.0)

    def test_per_worker_stats_report_depth_restarts_and_sheds(self):
        supervisor = Supervisor(pool_config(n_workers=1))
        try:
            supervisor.start()
            # Stall the only worker so the in-flight count is observable.
            supervisor.hang_worker(0.5)
            future = supervisor.submit({"id": "pw", "horizon_ticks": 4})
            per_worker = supervisor.per_worker_stats()
            assert set(per_worker) == {0}
            stats = per_worker[0]
            assert set(stats) == {"state", "queue_depth", "restarts", "shed"}
            assert stats["queue_depth"] == 1
            assert stats["restarts"] == 0
            assert stats["shed"] == 0
            assert "predictions" in future.result(timeout=30)
            payload = supervisor.stats_dict()
            assert set(payload["per_worker"]) == {"0"}
            assert payload["per_worker"]["0"]["state"] in ("live", "starting")
        finally:
            supervisor.drain(timeout_s=30.0)


async def _client_lines(port, lines):
    """Send JSON lines to the server; returns responses in read order."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for line in lines:
        writer.write(line.encode() + b"\n")
    await writer.drain()
    writer.write_eof()
    responses = [json.loads(raw) async for raw in reader if raw.strip()]
    writer.close()
    return responses


class TestPredictionServer:
    def test_tcp_round_trip_parity_controls_and_final_snapshot(self):
        payloads = [{"id": f"t{i}", "horizon_ticks": 5} for i in range(6)]
        final_name = "test-server-final"
        config = ServerConfig(
            port=0, pool=pool_config(), final_snapshot=final_name, allow_chaos=False
        )

        async def _run():
            server = PredictionServer(config)
            port = await server.start()
            lines = (
                ['{"control": "ping"}', "not json"]
                + [json.dumps(p) for p in payloads]
                + ['{"control": "kill-worker"}', '{"control": "stats"}']
            )
            responses = await _client_lines(port, lines)
            summary = await server.shutdown()
            return server, responses, summary

        server, responses, summary = asyncio.run(_run())
        # Responses come back in request order on one connection.
        ping, bad, *rest = responses
        answers, chaos, stats = rest[: len(payloads)], rest[-2], rest[-1]
        assert ping == {"control": "ping", "workers_live": 2}
        assert "invalid JSON" in bad["error"]
        assert {
            a["id"]: strip_latency(a) for a in answers
        } == expected_payloads(payloads)
        # Chaos commands are refused unless explicitly enabled.
        assert chaos["error"] == "chaos commands are disabled"
        # The stats snapshot is taken when its line is *accepted*, so
        # late predictions may still be in flight — line counters are
        # the deterministic part (all 10 lines were read by then).
        assert stats["stats"]["lines"] == len(payloads) + 4
        assert stats["stats"]["bad_lines"] == 1
        assert summary["drain_clean"] is True
        assert summary["served"] == len(payloads)
        # Graceful shutdown sealed the final named snapshot.
        assert server.final_snapshot_key is not None
        assert load_snapshot(final_name) is not None

    def test_loadtest_with_injected_worker_kill_loses_nothing(self):
        config = ServerConfig(
            port=0, pool=pool_config(), final_snapshot=None, allow_chaos=True
        )
        started = threading.Event()
        holder = {}

        def _serve():
            async def _main():
                server = PredictionServer(config)
                holder["port"] = await server.start()
                started.set()
                holder["summary"] = await server.serve_until_shutdown()

            try:
                asyncio.run(_main())
            except Exception as exc:  # surfaced to the main thread
                holder["error"] = exc
                started.set()

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        assert started.wait(timeout=120.0)
        if "error" in holder:
            raise holder["error"]
        result = run_loadtest(
            LoadTestConfig(
                port=holder["port"],
                n_requests=40,
                rate_rps=200.0,
                n_connections=3,
                horizon_ticks=6,
                kill_worker_after_s=0.05,
                shutdown_after=True,
            )
        )
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        summary = holder["summary"]
        # The acceptance claim: a SIGKILLed worker mid-run loses zero
        # accepted requests — every one of them is served.
        assert result.lost == 0
        assert result.served == 40
        assert result.killed_worker is not None
        assert summary["restarts"] >= 1
        assert summary["drain_clean"] is True
        assert summary["reason"] == "control command"


class TestLoadTestConfig:
    @pytest.mark.parametrize(
        "kwargs", [{"n_requests": 0}, {"n_connections": 0}, {"horizon_ticks": 0}]
    )
    def test_invalid_config_raises_typed_error(self, kwargs):
        with pytest.raises(ServingError):
            LoadTestConfig(**kwargs)
