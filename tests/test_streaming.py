"""Tests for the online streaming layer (ingest, RLS, drift, pipeline).

The load-bearing claims:

* the ingestion gate quarantines implausible readings one tick at a
  time, with batch-screening gap semantics;
* on a static stream the recursive estimator's parameters equal the
  batch least-squares fit (to 1e-6 relative error at the matching
  ridge);
* the CUSUM drift detector fires within its documented delay bound and
  does not false-alarm on in-calibration data;
* a snapshot/restore round trip through the artifact cache resumes the
  stream losslessly.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.artifacts import ArtifactCache
from repro.errors import StreamingError
from repro.streaming import (
    ClusterConsistencyMonitor,
    CusumDriftDetector,
    DriftConfig,
    GateThresholds,
    OnlineModelEstimator,
    OnlinePipeline,
    RecursiveLeastSquares,
    ReplaySource,
    StreamTick,
    TickGate,
    load_snapshot,
    save_snapshot,
)

from tests.conftest import make_linear_dataset


#: The hand-built linear dataset wanders outside the default plausible
#: band (its dynamics are synthetic, not a real room); equivalence tests
#: open the gate wide so online and batch consume identical rows.
WIDE_GATE = GateThresholds(
    min_plausible_c=-1000.0, max_plausible_c=1000.0, max_step_c=1000.0
)


def make_tick(index, temperatures, inputs=None, seconds=None):
    """A tick with defaulted inputs/seconds, for gate-level tests."""
    if inputs is None:
        inputs = np.zeros(7)
    return StreamTick(
        index=index,
        seconds=900.0 * index if seconds is None else seconds,
        temperatures=temperatures,
        inputs=inputs,
    )


def replay_through(dataset, order=2, forgetting=1.0, **kwargs):
    """A pipeline that has consumed the whole dataset."""
    pipeline = OnlinePipeline(
        dataset.sensor_ids,
        dataset.channels.n_channels,
        order=order,
        forgetting=forgetting,
        **kwargs,
    )
    pipeline.run(ReplaySource(dataset))
    return pipeline


class TestStreamTick:
    def test_vectors_coerced_to_float(self):
        tick = make_tick(0, [20, 21, 22])
        assert tick.temperatures.dtype == float

    @pytest.mark.parametrize("bad", [np.zeros((2, 2)), 1.0])
    def test_non_vector_rejected(self, bad):
        with pytest.raises(StreamingError, match="1-D"):
            make_tick(0, bad)


class TestReplaySource:
    def test_yields_every_row_in_order(self, linear_dataset):
        source = ReplaySource(linear_dataset)
        ticks = list(source)
        assert len(ticks) == len(source) == linear_dataset.n_samples
        assert [t.index for t in ticks[:3]] == [0, 1, 2]
        np.testing.assert_array_equal(
            ticks[5].temperatures, linear_dataset.temperatures[5]
        )
        np.testing.assert_array_equal(ticks[5].inputs, linear_dataset.inputs[5])
        assert ticks[1].seconds - ticks[0].seconds == linear_dataset.axis.period

    def test_half_open_range(self, linear_dataset):
        source = ReplaySource(linear_dataset, 10, 20)
        ticks = list(source)
        assert [t.index for t in ticks] == list(range(10, 20))

    def test_bad_range_rejected(self, linear_dataset):
        with pytest.raises(StreamingError, match="replay range"):
            ReplaySource(linear_dataset, 5, linear_dataset.n_samples + 1)

    def test_from_csv_round_trip(self, linear_dataset, tmp_path):
        from repro.data.io import save_dataset_csv

        save_dataset_csv(linear_dataset, tmp_path / "trace")
        source = ReplaySource.from_csv(tmp_path / "trace")
        assert source.sensor_ids == linear_dataset.sensor_ids
        first = next(iter(source))
        # The CSV format rounds to 4 decimals; replay matches to that.
        np.testing.assert_allclose(
            first.temperatures, linear_dataset.temperatures[0], atol=1e-4
        )


class TestGateThresholds:
    def test_inverted_range_rejected(self):
        with pytest.raises(StreamingError):
            GateThresholds(min_plausible_c=10.0, max_plausible_c=0.0)

    def test_non_positive_step_rejected(self):
        with pytest.raises(StreamingError):
            GateThresholds(max_step_c=0.0)


class TestTickGate:
    def test_plausible_readings_pass(self):
        gate = TickGate((1, 2))
        gated = gate.check(make_tick(0, [21.0, 22.0]))
        assert gated.clean
        assert not gated.quarantined

    def test_out_of_range_quarantined(self):
        gate = TickGate((1, 2))
        gated = gate.check(make_tick(0, [21.0, 99.0]))
        assert not gated.clean
        assert list(gated.quarantined) == [2]
        assert "plausible range" in gated.quarantined[2]

    def test_nan_is_a_gap_not_a_quarantine(self):
        gate = TickGate((1, 2))
        gated = gate.check(make_tick(0, [np.nan, 22.0]))
        assert not gated.clean
        assert not gated.quarantined
        assert gate.n_quarantined_readings == 0

    def test_impulsive_step_quarantined(self):
        gate = TickGate((1,))
        gate.check(make_tick(0, [21.0]))
        gated = gate.check(make_tick(1, [45.0]))
        assert list(gated.quarantined) == [1]
        assert "step" in gated.quarantined[1]

    def test_step_check_skipped_after_gap(self):
        """After a gap the comparison value is stale: range check only."""
        gate = TickGate((1,))
        gate.check(make_tick(0, [21.0]))
        gate.check(make_tick(1, [np.nan]))
        gated = gate.check(make_tick(2, [45.0]))
        assert gated.clean  # a 24-degree move over an unknown gap is not impulsive

    def test_quarantined_value_not_remembered(self):
        """The step baseline only advances on *accepted* readings."""
        gate = TickGate((1,))
        gate.check(make_tick(0, [21.0]))
        gate.check(make_tick(1, [45.0]))  # quarantined
        gated = gate.check(make_tick(2, [21.5]))
        assert gated.clean

    def test_invalid_inputs_flagged(self):
        gate = TickGate((1,))
        gated = gate.check(make_tick(0, [21.0], inputs=np.full(7, np.nan)))
        assert not gated.inputs_ok and not gated.clean
        assert not gated.quarantined  # inputs are gaps, not sensor quarantines

    def test_shape_mismatch_rejected(self):
        gate = TickGate((1, 2, 3))
        with pytest.raises(StreamingError, match="gated sensors"):
            gate.check(make_tick(0, [21.0]))

    def test_reset_forgets_step_baseline(self):
        gate = TickGate((1,))
        gate.check(make_tick(0, [21.0]))
        gate.reset()
        gated = gate.check(make_tick(1, [45.0]))
        assert gated.clean


class TestRecursiveLeastSquares:
    def test_bad_construction_rejected(self):
        with pytest.raises(StreamingError):
            RecursiveLeastSquares(0, 1)
        with pytest.raises(StreamingError):
            RecursiveLeastSquares(2, 1, forgetting=0.0)
        with pytest.raises(StreamingError):
            RecursiveLeastSquares(2, 1, regularization=0.0)

    def test_first_innovation_is_the_target(self):
        rls = RecursiveLeastSquares(2, 1)
        innovation = rls.update([1.0, 0.5], [3.0])
        np.testing.assert_allclose(innovation, [3.0])  # zero starting model

    def test_non_finite_update_rejected(self):
        rls = RecursiveLeastSquares(2, 1)
        with pytest.raises(StreamingError, match="non-finite"):
            rls.update([np.nan, 1.0], [1.0])

    def test_weights_property_is_a_copy(self):
        rls = RecursiveLeastSquares(2, 1)
        rls.weights[:] = 99.0
        assert np.all(rls.weights == 0.0)

    def test_matches_exact_ridge_solution(self):
        """The recursion IS the ridge solve: (eps I + Phi'Phi)^-1 Phi'Y."""
        gen = np.random.default_rng(5)
        phi = gen.standard_normal((200, 4))
        y = gen.standard_normal((200, 2))
        rls = RecursiveLeastSquares(4, 2, regularization=1e-8)
        for row, target in zip(phi, y):
            rls.update(row, target)
        gram = 1e-8 * np.eye(4) + phi.T @ phi
        exact = np.linalg.solve(gram, phi.T @ y)
        np.testing.assert_allclose(rls.weights, exact, rtol=1e-6, atol=1e-9)


def batch_fit(dataset, order, ridge):
    """The batch regression stack and its solutions at two ridges."""
    from repro.sysid.identify import (
        IdentificationOptions,
        build_regression,
        solve_least_squares,
    )

    options = IdentificationOptions(order=order)
    segments = dataset.segments(min_length=order + 1)
    phi, y = build_regression(dataset.temperatures, dataset.inputs, segments, options)
    return phi, y, solve_least_squares(phi, y, ridge=ridge)


class TestOnlineBatchEquivalence:
    """ISSUE acceptance: RLS on a static replay equals the batch fit."""

    @pytest.mark.parametrize("order", [1, 2])
    def test_rls_matches_batch_least_squares(self, order):
        dataset = make_linear_dataset(n_days=4.0, noise=0.02)
        pipeline = replay_through(dataset, order=order, gate_thresholds=WIDE_GATE)
        reg = pipeline.estimator.rls.regularization
        phi, y, w_batch = batch_fit(dataset, order, ridge=reg)

        assert pipeline.estimator.n_updates == phi.shape[0]
        w_online = pipeline.estimator.rls.weights
        rel = np.linalg.norm(w_online - w_batch) / np.linalg.norm(w_batch)
        assert rel <= 1e-6

        # Against the *unregularized* fit the agreement is bounded by
        # the ridge bias, not the recursion: still tight, not 1e-6.
        _, _, w_plain = batch_fit(dataset, order, ridge=0.0)
        rel_plain = np.linalg.norm(w_online - w_plain) / np.linalg.norm(w_plain)
        assert rel_plain <= 1e-4

    @pytest.mark.parametrize("order", [1, 2])
    def test_gaps_reset_rows_like_batch_segments(self, order):
        """A gap resets the lag buffer: same rows as batch segmentation."""
        gaps = (50, 51, 150, 260)
        dataset = make_linear_dataset(n_days=4.0, noise=0.02, gap_ticks=gaps)
        pipeline = replay_through(dataset, order=order, gate_thresholds=WIDE_GATE)
        reg = pipeline.estimator.rls.regularization
        phi, y, w_batch = batch_fit(dataset, order, ridge=reg)

        assert pipeline.summary.n_gap_ticks == len(gaps)
        assert pipeline.estimator.n_updates == phi.shape[0]
        w_online = pipeline.estimator.rls.weights
        rel = np.linalg.norm(w_online - w_batch) / np.linalg.norm(w_batch)
        assert rel <= 1e-6

    def test_model_unpacks_like_identify(self):
        """to_model() and identify() agree matrix by matrix."""
        from repro.sysid.identify import IdentificationOptions, identify

        dataset = make_linear_dataset(n_days=4.0, noise=0.02)
        pipeline = replay_through(dataset, order=2, gate_thresholds=WIDE_GATE)
        online = pipeline.model()
        batch = identify(dataset, IdentificationOptions(order=2))
        np.testing.assert_allclose(online.A1, batch.A1, rtol=0, atol=1e-5)
        np.testing.assert_allclose(online.A2, batch.A2, rtol=0, atol=1e-5)
        np.testing.assert_allclose(online.B, batch.B, rtol=0, atol=1e-5)

    def test_forgetting_tracks_a_regime_change(self):
        """lambda < 1 lands nearer the post-change dynamics than lambda = 1."""
        gen = np.random.default_rng(11)
        first = make_linear_dataset(n_days=4.0, seed=7, noise=0.01)
        n, p = first.temperatures.shape
        half = n // 2
        # Second half: visibly different dynamics, same input trace.
        a2 = 0.7 * np.eye(p) + 0.05 * gen.random((p, p))
        b2 = 0.08 * gen.standard_normal((p, first.inputs.shape[1]))
        temps = first.temperatures.copy()
        for k in range(half, n - 1):
            temps[k + 1] = a2 @ temps[k] + b2 @ first.inputs[k]
        dataset = replace(first, temperatures=temps)

        estimators = {}
        for forgetting in (1.0, 0.95):
            pipeline = replay_through(
                dataset, order=1, forgetting=forgetting, gate_thresholds=WIDE_GATE
            )
            estimators[forgetting] = pipeline.estimator.rls.weights
        w_truth = np.vstack([a2.T, b2.T])
        err = {
            f: np.linalg.norm(w - w_truth) for f, w in estimators.items()
        }
        assert err[0.95] < err[1.0]


class TestOnlineModelEstimator:
    def test_invalid_order_rejected(self):
        with pytest.raises(StreamingError, match="order"):
            OnlineModelEstimator(n_sensors=2, n_inputs=7, order=3)

    def test_underdetermined_model_raises(self):
        estimator = OnlineModelEstimator(n_sensors=2, n_inputs=7, order=2)
        assert not estimator.ready
        with pytest.raises(StreamingError, match="underdetermined"):
            estimator.to_model()

    def test_history_needs_order_valid_ticks(self, linear_dataset):
        pipeline = OnlinePipeline(
            linear_dataset.sensor_ids, linear_dataset.channels.n_channels, order=2
        )
        ticks = iter(ReplaySource(linear_dataset))
        pipeline.process(next(ticks))
        assert pipeline.estimator.history() is None
        pipeline.process(next(ticks))
        history = pipeline.estimator.history()
        assert history is not None and history.shape == (
            2,
            len(linear_dataset.sensor_ids),
        )
        np.testing.assert_array_equal(history[-1], linear_dataset.temperatures[1])


class TestDriftConfig:
    def test_validation(self):
        with pytest.raises(StreamingError):
            DriftConfig(warmup_ticks=1)
        with pytest.raises(StreamingError):
            DriftConfig(threshold=0.0)
        with pytest.raises(StreamingError):
            DriftConfig(slack=-0.1)

    def test_delay_bound_formula(self):
        config = DriftConfig(threshold=8.0, slack=0.5)
        assert config.delay_bound(4.5) == 2  # ceil(8 / 4)
        assert config.delay_bound(1.5) == 8  # ceil(8 / 1)

    def test_delay_bound_undefined_inside_slack(self):
        with pytest.raises(StreamingError, match="slack"):
            DriftConfig(slack=0.5).delay_bound(0.5)


class TestCusumDriftDetector:
    def make_calibrated(self, config=None, seed=0):
        """A detector calibrated on seeded unit-ish noise."""
        config = config or DriftConfig(warmup_ticks=64)
        detector = CusumDriftDetector(config)
        gen = np.random.default_rng(seed)
        for value in 1.0 + 0.1 * gen.standard_normal(config.warmup_ticks):
            assert detector.update(value) is False
        assert detector.calibrated
        return detector

    def test_fires_within_the_documented_delay_bound(self):
        """ISSUE acceptance: detection delay respects delay_bound."""
        detector = self.make_calibrated()
        shift = 4.0
        shifted = detector.mean + shift * detector.sigma
        bound = detector.config.delay_bound(shift)
        delay = None
        for k in range(bound + 5):
            if detector.update(shifted):
                delay = k + 1
                break
        assert delay is not None and delay <= bound

    def test_no_false_alarm_on_in_calibration_data(self):
        detector = self.make_calibrated()
        gen = np.random.default_rng(42)
        for value in 1.0 + 0.1 * gen.standard_normal(1000):
            detector.update(value)
        assert not detector.fired

    def test_shift_inside_slack_never_fires(self):
        detector = self.make_calibrated()
        barely = detector.mean + 0.4 * detector.sigma  # below the 0.5-sigma slack
        for _ in range(2000):
            detector.update(barely)
        assert not detector.fired

    def test_reset_alarm_keeps_calibration(self):
        detector = self.make_calibrated()
        mean, sigma = detector.mean, detector.sigma
        while not detector.update(detector.mean + 5 * detector.sigma):
            pass
        detector.reset_alarm()
        assert not detector.fired and detector.statistic == 0.0
        assert detector.mean == mean and detector.sigma == sigma

    def test_non_finite_value_rejected(self):
        with pytest.raises(StreamingError, match="non-finite"):
            CusumDriftDetector().update(float("nan"))

    def test_sigma_floored_on_constant_warmup(self):
        config = DriftConfig(warmup_ticks=8)
        detector = CusumDriftDetector(config)
        for _ in range(8):
            detector.update(1.0)
        assert detector.sigma == config.min_sigma


class TestClusterConsistencyMonitor:
    def make_monitor(self, **kwargs):
        return ClusterConsistencyMonitor(
            cluster_columns={0: (0, 1, 2), 1: (3, 4)},
            selected_columns={0: 0, 1: 3},
            **kwargs,
        )

    def test_healthy_tracking_stays_quiet(self):
        monitor = self.make_monitor(window_ticks=10, max_divergence_c=0.5)
        for _ in range(20):
            monitor.update([20.0, 20.1, 19.9, 24.0, 24.0])
        assert not monitor.recommend_recluster
        assert monitor.divergence()[0] < 0.1

    def test_sustained_divergence_recommends_reclustering(self):
        monitor = self.make_monitor(window_ticks=10, max_divergence_c=0.5)
        for _ in range(20):
            monitor.update([22.0, 20.0, 20.0, 24.0, 24.0])
        assert monitor.recommend_recluster
        assert monitor.divergence()[0] > 1.0

    def test_gaps_carry_no_evidence(self):
        monitor = self.make_monitor(window_ticks=10)
        monitor.update([np.nan, 20.0, 20.0, 24.0, 24.0])
        assert np.isnan(monitor.divergence()[0])
        assert not monitor.recommend_recluster

    def test_selected_outside_cluster_rejected(self):
        with pytest.raises(StreamingError, match="cluster"):
            ClusterConsistencyMonitor(
                cluster_columns={0: (0, 1)}, selected_columns={0: 0, 1: 2}
            )

    def test_from_selection_maps_ids_to_columns(self, month_dataset):
        from repro.cluster import cluster_sensors
        from repro.selection import near_mean_selection

        clustering = cluster_sensors(month_dataset, method="correlation", k=2)
        selection = near_mean_selection(clustering, month_dataset)
        monitor = ClusterConsistencyMonitor.from_selection(
            clustering, selection, month_dataset.sensor_ids
        )
        assert set(monitor.selected_columns) <= set(range(clustering.k))
        for cluster, column in monitor.selected_columns.items():
            assert column in monitor.cluster_columns[cluster]
        monitor.update(month_dataset.temperatures[0])
        assert all(np.isfinite(v) for v in monitor.divergence().values())


class TestOnlinePipeline:
    def test_quarantined_tick_resets_the_row_stream(self):
        """A quarantined reading must not contribute a regression row."""
        dataset = make_linear_dataset(n_days=2.0, noise=0.01)
        spiked = dataset.temperatures.copy()
        spiked[40, 0] = 5000.0  # outside even the wide plausible range
        faulty = replace(dataset, temperatures=spiked)
        clean = replay_through(dataset, order=2, gate_thresholds=WIDE_GATE)
        gated = replay_through(faulty, order=2, gate_thresholds=WIDE_GATE)
        assert gated.summary.n_quarantined_ticks == 1
        assert gated.summary.quarantine_counts == {1: 1}
        # One bad tick costs the row it would complete plus the
        # order+1-tick refill of the lag buffer.
        assert gated.estimator.n_updates == clean.estimator.n_updates - 3

    def test_drift_calibration_skips_the_startup_transient(self):
        """The first q innovations never reach the CUSUM calibration."""
        dataset = make_linear_dataset(n_days=2.0, noise=0.01)
        pipeline = replay_through(dataset, order=2, gate_thresholds=WIDE_GATE)
        q = pipeline.estimator.rls.n_regressors
        assert pipeline.drift.n_seen == pipeline.estimator.n_updates - q

    def test_predict_ahead_equals_model_simulate(self):
        """ISSUE acceptance: predict-ahead == batch-style simulation."""
        dataset = make_linear_dataset(n_days=2.0, noise=0.01)
        pipeline = replay_through(dataset, order=2, gate_thresholds=WIDE_GATE)
        horizon = np.tile(dataset.inputs[-1], (8, 1))
        served = pipeline.predict_ahead(horizon)
        expected = pipeline.model().simulate(pipeline.estimator.history(), horizon)
        assert served.tobytes() == expected.tobytes()

    def test_predict_ahead_without_history_raises(self):
        pipeline = OnlinePipeline((1, 2, 3), 7, order=2, gate_thresholds=WIDE_GATE)
        dataset = make_linear_dataset(n_days=2.0)
        pipeline.run(ReplaySource(dataset, 0, dataset.n_samples))
        pipeline.estimator.reset_history()
        with pytest.raises(StreamingError, match="history"):
            pipeline.predict_ahead(np.zeros((4, 7)))

    def test_summary_describe_mentions_counts(self):
        dataset = make_linear_dataset(n_days=2.0, gap_ticks=(30,))
        pipeline = replay_through(dataset)
        text = pipeline.summary.describe()
        assert f"{pipeline.summary.n_ticks} ticks" in text
        assert "1 gaps" in text


class TestSnapshotRoundTrip:
    def test_restored_pipeline_continues_identically(self, tmp_path):
        """ISSUE acceptance: snapshot/restore is a lossless round trip."""
        cache = ArtifactCache(root=tmp_path, enabled=True)
        dataset = make_linear_dataset(n_days=4.0, noise=0.02)
        half = dataset.n_samples // 2

        straight = replay_through(dataset, order=2, gate_thresholds=WIDE_GATE)

        partial = OnlinePipeline(
            dataset.sensor_ids,
            dataset.channels.n_channels,
            order=2,
            gate_thresholds=WIDE_GATE,
        )
        partial.run(ReplaySource(dataset, 0, half))
        key = save_snapshot("round-trip", partial, cache=cache)
        assert key is not None
        restored = load_snapshot("round-trip", cache=cache)
        assert restored is not None and restored is not partial
        restored.run(ReplaySource(dataset, half))

        np.testing.assert_array_equal(
            restored.estimator.rls.weights, straight.estimator.rls.weights
        )
        assert restored.estimator.n_updates == straight.estimator.n_updates
        assert restored.summary.n_ticks == straight.summary.n_ticks
        assert restored.drift.n_seen == straight.drift.n_seen
        np.testing.assert_array_equal(
            restored.estimator.history(), straight.estimator.history()
        )

    def test_disabled_cache_returns_none(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=False)
        pipeline = OnlinePipeline((1,), 7, order=1)
        assert save_snapshot("nope", pipeline, cache=cache) is None
        assert load_snapshot("nope", cache=cache) is None

    def test_wrong_typed_artifact_is_a_miss(self, tmp_path):
        from repro.streaming.state import snapshot_key

        cache = ArtifactCache(root=tmp_path, enabled=True)
        cache.store(snapshot_key("stale"), {"not": "a pipeline"})
        assert load_snapshot("stale", cache=cache) is None

    def test_empty_name_rejected(self):
        from repro.streaming.state import snapshot_key

        with pytest.raises(StreamingError, match="name"):
            snapshot_key("")
