"""Golden-trace parity of the staged step-kernel simulator.

The refactor's contract is absolute: the kernel pipeline, the chunked
driver and the monolithic reference loop must produce *bit-identical*
traces — same seeded RNG draw order, same per-step float operation
order.  These tests enforce it with ``np.array_equal`` (no tolerance)
across chunk sizes, RC model orders and with a supervisory controller
attached, plus the chunk-cache round trip and the per-chunk contract
seams.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.artifacts import (
    ArtifactCache,
    ChunkManifest,
    chunk_key,
    chunk_manifest_key,
    load_chunk_series,
)
from repro.errors import ConfigurationError, SimulationError
from repro.geometry import Point
from repro.simulation import AuditoriumSimulator, SimulationConfig
from repro.simulation.rc_network import RCNetworkConfig

#: Every array a SimulationResult carries; parity is over all of them.
RESULT_FIELDS = (
    "zone_temps",
    "mass_temps",
    "vav_flows",
    "vav_temps",
    "co2",
    "humidity_ratio",
    "thermostat_readings",
    "thermostat_true",
    "occupancy",
    "zone_occupancy",
    "lighting",
    "ambient",
)


def assert_results_identical(a, b):
    for name in RESULT_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert np.array_equal(left, right), f"{name} differs (bit-exactness broken)"


class StubController:
    """Deterministic supervisory controller exercising both decide paths."""

    def positions(self):
        return [Point(5.0, 4.0, 1.1), Point(15.0, 8.0, 1.1)]

    def decide(self, step, hour_of_day, readings, dt):
        if step % 7 == 0:
            return None  # fall through to the built-in PI logic
        demand = float(np.clip(np.mean(readings) - 21.0, 0.0, 1.0))
        return np.full(4, 0.03 + demand * 0.5)


class TestChunkedParity:
    """iter_chunks concatenation is bit-identical to the single shot."""

    @pytest.fixture(scope="class")
    def single_shot(self):
        return AuditoriumSimulator(SimulationConfig(days=0.7)).run()

    # 1 step, 1 day, an odd non-divisor of 1008 steps, the whole trace.
    @pytest.mark.parametrize("chunk_steps", [1, 1440, 37, 1008])
    def test_chunk_sizes(self, single_shot, chunk_steps):
        chunked = AuditoriumSimulator(SimulationConfig(days=0.7)).run(
            chunk_steps=chunk_steps
        )
        assert_results_identical(chunked, single_shot)

    def test_matches_reference_loop(self, single_shot):
        loop = AuditoriumSimulator(SimulationConfig(days=0.7)).run_loop()
        assert_results_identical(loop, single_shot)

    def test_other_seed(self):
        config = SimulationConfig(days=0.7, seed=99)
        whole = AuditoriumSimulator(config).run()
        chunked = AuditoriumSimulator(config).run(chunk_steps=113)
        loop = AuditoriumSimulator(config).run_loop()
        assert_results_identical(chunked, whole)
        assert_results_identical(loop, whole)


class TestParityAcrossModels:
    """Parity holds for both RC model orders and other grids."""

    @pytest.mark.parametrize(
        "config",
        [
            SimulationConfig(days=0.5, rc=RCNetworkConfig(zone_capacitance=1.5e5)),
            SimulationConfig(days=0.5, grid_nx=4, grid_ny=3),
        ],
        ids=["rc-variant", "grid-4x3"],
    )
    def test_config_variants(self, config):
        whole = AuditoriumSimulator(config).run()
        chunked = AuditoriumSimulator(config).run(chunk_steps=97)
        loop = AuditoriumSimulator(config).run_loop()
        assert_results_identical(chunked, whole)
        assert_results_identical(loop, whole)

    def test_with_supervisory_controller(self):
        config = SimulationConfig(days=0.5)
        whole = AuditoriumSimulator(config, supervisory_controller=StubController()).run()
        chunked = AuditoriumSimulator(
            config, supervisory_controller=StubController()
        ).run(chunk_steps=101)
        loop = AuditoriumSimulator(
            config, supervisory_controller=StubController()
        ).run_loop()
        assert_results_identical(chunked, whole)
        assert_results_identical(loop, whole)


class TestChunkDriver:
    """Shape and error behaviour of iter_chunks / assemble."""

    def test_chunks_tile_the_trace(self):
        config = SimulationConfig(days=0.5)
        chunks = list(AuditoriumSimulator(config).iter_chunks(100))
        assert chunks[0].start == 0
        assert chunks[-1].stop == config.n_steps
        for before, after in zip(chunks, chunks[1:]):
            assert before.stop == after.start
        assert [c.index for c in chunks] == list(range(len(chunks)))
        assert sum(c.n_steps for c in chunks) == config.n_steps

    def test_bad_chunk_size_rejected(self):
        simulator = AuditoriumSimulator(SimulationConfig(days=0.5))
        with pytest.raises(ConfigurationError):
            list(simulator.iter_chunks(0))

    def test_assemble_rejects_gapped_series(self):
        simulator = AuditoriumSimulator(SimulationConfig(days=0.5))
        chunks = list(simulator.iter_chunks(100))
        with pytest.raises(SimulationError):
            AuditoriumSimulator(SimulationConfig(days=0.5)).assemble(
                chunks[:2] + chunks[3:]
            )

    def test_assemble_rejects_empty(self):
        simulator = AuditoriumSimulator(SimulationConfig(days=0.5))
        with pytest.raises(SimulationError):
            simulator.assemble([])

    def test_contract_violation_names_the_chunk(self):
        """A physically implausible state reports the chunk it surfaced in."""
        from repro.errors import ContractError

        config = SimulationConfig(days=0.2, initial_temp=150.0)
        simulator = AuditoriumSimulator(config)
        with pytest.raises(ContractError) as excinfo:
            list(simulator.iter_chunks(60))
        assert "chunk 0" in str(excinfo.value)


class TestChunkCache:
    """The streamed chunk series round-trips through the artifact cache."""

    def test_round_trip_and_resume(self, tmp_path, monkeypatch):
        from repro.data import synth

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        synth.clear_cache()
        config = synth.SynthConfig(simulation=SimulationConfig(days=0.5))
        first = synth.generate(config, chunk_steps=200)

        cache = ArtifactCache(root=tmp_path, enabled=True)
        sim_cfg = config.simulation
        chunks = load_chunk_series(cache, synth.SIM_CHUNK_KIND, sim_cfg)
        assert chunks is not None
        assert sum(c.n_steps for c in chunks) == sim_cfg.n_steps

        # Drop the assembled output so generate() must resume from chunks.
        synth.clear_cache()
        cache._discard(cache.path_for(config.artifact_key()))
        second = synth.generate(config, chunk_steps=200)
        assert_results_identical(second.simulation, first.simulation)

    def test_unsealed_series_is_a_miss(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        sim_cfg = SimulationConfig(days=0.5)
        from repro.data.synth import SIM_CHUNK_KIND

        cache.store(chunk_key(SIM_CHUNK_KIND, sim_cfg, 100, 0), "partial")
        assert load_chunk_series(cache, SIM_CHUNK_KIND, sim_cfg) is None

    def test_missing_chunk_misses_whole_series(self, tmp_path):
        cache = ArtifactCache(root=tmp_path, enabled=True)
        sim_cfg = SimulationConfig(days=0.5)
        from repro.data.synth import SIM_CHUNK_KIND

        cache.store(
            chunk_manifest_key(SIM_CHUNK_KIND, sim_cfg),
            ChunkManifest(n_chunks=2, chunk_steps=100, n_steps=200),
        )
        cache.store(chunk_key(SIM_CHUNK_KIND, sim_cfg, 100, 0), "only-first")
        assert load_chunk_series(cache, SIM_CHUNK_KIND, sim_cfg) is None


class TestEngineSelection:
    """generate() exposes the engine choice and validates it."""

    def test_unknown_engine_rejected(self):
        from repro.data.synth import SynthConfig, generate

        with pytest.raises(ValueError):
            generate(SynthConfig(), engine="warp")

    def test_loop_engine_matches_kernel(self, monkeypatch):
        from repro.data import synth

        monkeypatch.setenv("REPRO_CACHE", "off")
        synth.clear_cache()
        config = synth.SynthConfig(simulation=SimulationConfig(days=0.5))
        kernel = synth.generate(config, use_cache=False)
        loop = synth.generate(config, use_cache=False, engine="loop")
        assert_results_identical(kernel.simulation, loop.simulation)

    def test_seed_override_keeps_every_field(self):
        """Regression: the seed rebuild used to drop thermostat_draft."""
        from repro.data.synth import SynthConfig

        sim = SimulationConfig(days=0.5, thermostat_draft=0.9)
        config = SynthConfig(simulation=sim, seed=123)
        rebuilt = dataclasses.replace(sim, seed=config.seed)
        assert rebuilt.thermostat_draft == 0.9
        assert rebuilt.seed == 123
