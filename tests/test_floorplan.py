"""Tests for the ASCII floor-plan renderer."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.experiments.floorplan import busiest_tick, render_floorplan


class TestBusiestTick:
    def test_picks_high_occupancy(self, week_dataset):
        tick = busiest_tick(week_dataset)
        occupancy = week_dataset.input_channel("occupancy")
        assert occupancy[tick] > 50

    def test_requires_valid_data(self, week_dataset):
        broken = week_dataset.masked_outside(np.zeros(week_dataset.n_samples, bool))
        with pytest.raises(DataError):
            busiest_tick(broken)


class TestRender:
    def test_renders_all_sensors(self, week_dataset):
        tick = busiest_tick(week_dataset)
        text = render_floorplan(week_dataset, tick)
        for sid in week_dataset.sensor_ids:
            assert str(sid) in text
        assert "FRONT" in text and "BACK" in text
        assert "degC" in text

    def test_canvas_dimensions(self, week_dataset):
        tick = busiest_tick(week_dataset)
        text = render_floorplan(week_dataset, tick, width=40, height=10)
        lines = text.splitlines()
        # border + FRONT + 10 rows + BACK + border + legend
        assert len(lines) == 15
        assert all(len(line) == 42 for line in lines[:-1])

    def test_tick_range_checked(self, week_dataset):
        with pytest.raises(DataError):
            render_floorplan(week_dataset, -1)
        with pytest.raises(DataError):
            render_floorplan(week_dataset, week_dataset.n_samples)

    def test_canvas_size_checked(self, week_dataset):
        with pytest.raises(DataError):
            render_floorplan(week_dataset, 0, width=5, height=5)
