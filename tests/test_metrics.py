"""Tests for error metrics."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.sysid.metrics import (
    empirical_cdf,
    max_pairwise_difference,
    per_sensor_rms,
    percentile,
    pooled_rms,
    rms,
)


class TestRMS:
    def test_scalar(self):
        assert rms(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))

    def test_ignores_nan(self):
        assert rms(np.array([3.0, np.nan])) == pytest.approx(3.0)

    def test_axis(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(rms(matrix, axis=0), [np.sqrt(5), np.sqrt(10)])


class TestPooledAndPerSensor:
    def test_pooled(self):
        predicted = np.array([[1.0, 2.0], [3.0, 4.0]])
        measured = np.zeros((2, 2))
        assert pooled_rms(predicted, measured) == pytest.approx(np.sqrt(30 / 4))

    def test_pooled_skips_nan_pairs(self):
        predicted = np.array([1.0, np.nan])
        measured = np.array([0.0, 0.0])
        assert pooled_rms(predicted, measured) == pytest.approx(1.0)

    def test_pooled_all_nan_raises(self):
        with pytest.raises(DataError):
            pooled_rms(np.array([np.nan]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(DataError):
            pooled_rms(np.zeros(3), np.zeros(4))

    def test_per_sensor(self):
        predicted = np.array([[1.0, 0.0], [1.0, 0.0]])
        measured = np.zeros((2, 2))
        np.testing.assert_allclose(per_sensor_rms(predicted, measured), [1.0, 0.0])


class TestPercentileAndCDF:
    def test_percentile(self):
        values = np.arange(101.0)
        assert percentile(values, 90.0) == pytest.approx(90.0)

    def test_percentile_ignores_nan(self):
        values = np.array([1.0, np.nan, 3.0])
        assert percentile(values, 50.0) == pytest.approx(2.0)

    def test_percentile_empty_raises(self):
        with pytest.raises(DataError):
            percentile(np.array([np.nan]), 50.0)

    def test_empirical_cdf(self):
        values, f = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1, 2, 3])
        np.testing.assert_allclose(f, [1 / 3, 2 / 3, 1.0])

    def test_cdf_is_monotone(self):
        values, f = empirical_cdf(np.random.default_rng(0).random(100))
        assert (np.diff(values) >= 0).all()
        assert (np.diff(f) > 0).all()


class TestMaxPairwiseDifference:
    def test_pairs(self):
        columns = np.array([[20.0, 21.0, 20.0], [20.0, 23.0, 20.5]])
        out = max_pairwise_difference(columns)
        # pairs: (0,1), (0,2), (1,2)
        np.testing.assert_allclose(out, [3.0, 0.5, 2.5])

    def test_nan_rows_ignored_per_pair(self):
        columns = np.array([[20.0, 21.0], [np.nan, 25.0], [20.0, 20.5]])
        out = max_pairwise_difference(columns)
        assert out[0] == pytest.approx(1.0)

    def test_requires_2d(self):
        with pytest.raises(DataError):
            max_pairwise_difference(np.zeros(5))
