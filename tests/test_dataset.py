"""Tests for the AuditoriumDataset container."""

from datetime import datetime

import numpy as np
import pytest

from repro.data.dataset import AuditoriumDataset, InputChannels
from repro.data.modes import OCCUPIED, UNOCCUPIED
from repro.data.timeseries import TimeAxis
from repro.errors import DataError

EPOCH = datetime(2013, 1, 31)


def make_dataset(n_days=2, period_s=900.0, n_sensors=4, fill=20.0):
    count = int(n_days * 86400 / period_s)
    axis = TimeAxis(epoch=EPOCH, period=period_s, count=count)
    channels = InputChannels()
    temps = np.full((count, n_sensors), fill)
    temps += np.arange(n_sensors)[None, :] * 0.1
    inputs = np.ones((count, channels.n_channels))
    return AuditoriumDataset(
        axis=axis,
        sensor_ids=tuple(range(10, 10 + n_sensors)),
        temperatures=temps,
        inputs=inputs,
        channels=channels,
    )


class TestInputChannels:
    def test_names_layout(self):
        channels = InputChannels(n_vavs=4)
        assert channels.names == (
            "vav1_flow", "vav2_flow", "vav3_flow", "vav4_flow",
            "occupancy", "lighting", "ambient",
        )
        assert channels.n_channels == 7
        assert channels.index_of("occupancy") == 4
        with pytest.raises(DataError):
            channels.index_of("nope")


class TestConstruction:
    def test_shape_validation(self):
        dataset = make_dataset()
        with pytest.raises(DataError):
            AuditoriumDataset(
                axis=dataset.axis,
                sensor_ids=dataset.sensor_ids,
                temperatures=dataset.temperatures[:, :2],
                inputs=dataset.inputs,
            )

    def test_duplicate_ids_rejected(self):
        dataset = make_dataset()
        with pytest.raises(DataError):
            AuditoriumDataset(
                axis=dataset.axis,
                sensor_ids=(1, 1, 2, 3),
                temperatures=dataset.temperatures,
                inputs=dataset.inputs,
            )


class TestAccessors:
    def test_column_of_and_temperature_of(self):
        dataset = make_dataset()
        assert dataset.column_of(11) == 1
        np.testing.assert_allclose(dataset.temperature_of(11), 20.1)
        with pytest.raises(DataError):
            dataset.column_of(999)

    def test_input_channel_and_vav_flows(self):
        dataset = make_dataset()
        assert dataset.input_channel("ambient").shape == (dataset.n_samples,)
        assert dataset.vav_flows().shape == (dataset.n_samples, 4)


class TestTransforms:
    def test_select_sensors_preserves_order(self):
        dataset = make_dataset()
        sub = dataset.select_sensors([12, 10])
        assert sub.sensor_ids == (12, 10)
        np.testing.assert_allclose(sub.temperature_of(12), 20.2)

    def test_window(self):
        dataset = make_dataset()
        sub = dataset.window(10, 20)
        assert sub.n_samples == 10
        assert sub.axis.epoch == dataset.axis.datetime_at(10)

    def test_masked_outside(self):
        dataset = make_dataset()
        mask = np.zeros(dataset.n_samples, dtype=bool)
        mask[:5] = True
        masked = dataset.masked_outside(mask)
        assert np.isfinite(masked.temperatures[:5]).all()
        assert np.isnan(masked.temperatures[5:]).all()
        # Original untouched.
        assert np.isfinite(dataset.temperatures).all()


class TestDaysAndModes:
    def test_usable_days_full_coverage(self):
        dataset = make_dataset(n_days=3)
        assert dataset.usable_days(OCCUPIED) == [0, 1, 2]

    def test_usable_days_drops_broken_day(self):
        dataset = make_dataset(n_days=3)
        day_of_row = dataset.axis.day_indices()
        temps = dataset.temperatures.copy()
        temps[day_of_row == 1] = np.nan
        broken = AuditoriumDataset(
            axis=dataset.axis,
            sensor_ids=dataset.sensor_ids,
            temperatures=temps,
            inputs=dataset.inputs,
        )
        assert broken.usable_days(OCCUPIED) == [0, 2]

    def test_restrict_days_with_mode(self):
        dataset = make_dataset(n_days=3)
        restricted = dataset.restrict_days([1], mode=OCCUPIED)
        finite_rows = np.isfinite(restricted.temperatures).all(axis=1)
        hours = dataset.axis.hours_of_day()
        days = dataset.axis.day_indices()
        expected = (days == 1) & (hours >= 6.0) & (hours < 21.0)
        np.testing.assert_array_equal(finite_rows, expected)

    def test_split_half_days(self):
        dataset = make_dataset(n_days=4)
        train, valid = dataset.split_half_days(OCCUPIED)
        train_days = {d for d in train.usable_days(OCCUPIED)}
        valid_days = {d for d in valid.usable_days(OCCUPIED)}
        assert train_days == {0, 1}
        assert valid_days == {2, 3}

    def test_split_requires_two_days(self):
        dataset = make_dataset(n_days=1)
        with pytest.raises(DataError):
            dataset.split_half_days(OCCUPIED)


class TestSegments:
    def test_segments_respect_mode(self):
        dataset = make_dataset(n_days=2)
        segments = dataset.segments(mode=UNOCCUPIED)
        hours = dataset.axis.hours_of_day()
        for segment in segments:
            assert all(UNOCCUPIED.contains_hour(h) for h in hours[segment.indices()])

    def test_coverage(self):
        dataset = make_dataset()
        assert dataset.coverage() == pytest.approx(1.0)
        mask = np.zeros(dataset.n_samples, dtype=bool)
        assert dataset.masked_outside(mask).coverage() == 0.0
