"""Tests for the free-run prediction-evaluation protocol."""

import numpy as np
import pytest

from repro.data.modes import OCCUPIED
from repro.errors import IdentificationError
from repro.sysid.evaluation import (
    EvaluationOptions,
    PredictionEvaluation,
    evaluate_model,
    fit_and_evaluate,
)
from repro.sysid.identify import IdentificationOptions, identify
from tests.conftest import make_linear_dataset


@pytest.fixture
def dataset():
    return make_linear_dataset(n_days=6, noise=0.0)


class TestEvaluateModel:
    def test_perfect_model_zero_error(self, dataset):
        model = identify(dataset, IdentificationOptions(order=1))
        result = evaluate_model(
            model,
            dataset,
            mode=OCCUPIED,
            options=EvaluationOptions(start_offset_hours=1.0, horizon_hours=10.0),
        )
        assert result.n_days == 6
        assert result.overall_percentile(90) < 1e-6

    def test_wrong_model_nonzero_error(self, dataset):
        model = identify(dataset, IdentificationOptions(order=1))
        wrong = type(model)(A=model.A * 0.95, B=model.B)
        result = evaluate_model(
            wrong,
            dataset,
            mode=OCCUPIED,
            options=EvaluationOptions(start_offset_hours=1.0, horizon_hours=10.0),
        )
        assert result.overall_percentile(90) > 0.1

    def test_days_with_input_gaps_skipped(self, dataset):
        model = identify(dataset, IdentificationOptions(order=1))
        # Poison day 2's inputs inside the horizon.
        day_of_row = dataset.axis.day_indices()
        hours = dataset.axis.hours_of_day()
        poison = (day_of_row == 2) & (hours > 10) & (hours < 11)
        dataset.inputs[poison] = np.nan
        result = evaluate_model(
            model,
            dataset,
            mode=OCCUPIED,
            options=EvaluationOptions(start_offset_hours=1.0, horizon_hours=10.0),
        )
        assert 2 not in result.per_day_rms
        assert result.n_days == 5

    def test_horizon_longer_than_window_yields_no_days(self, dataset):
        model = identify(dataset, IdentificationOptions(order=1))
        with pytest.raises(IdentificationError):
            evaluate_model(
                model,
                dataset,
                mode=OCCUPIED,
                options=EvaluationOptions(start_offset_hours=1.0, horizon_hours=48.0),
            )

    def test_keep_traces_alignment(self, dataset):
        model = identify(dataset, IdentificationOptions(order=2))
        options = EvaluationOptions(start_offset_hours=1.0, horizon_hours=8.0)
        result = evaluate_model(model, dataset, mode=OCCUPIED, options=options, keep_traces=True)
        for day, (start, predicted, measured) in result.traces.items():
            np.testing.assert_array_equal(
                measured, dataset.temperatures[start : start + len(measured)]
            )


class TestPredictionEvaluation:
    def test_aggregations(self):
        evaluation = PredictionEvaluation(sensor_ids=(1, 2))
        evaluation.per_day_rms[0] = np.array([1.0, 2.0])
        evaluation.per_day_rms[1] = np.array([3.0, 4.0])
        matrix = evaluation.rms_matrix()
        assert matrix.shape == (2, 2)
        np.testing.assert_allclose(evaluation.sensor_rms(), [np.sqrt(5), np.sqrt(10)])
        assert evaluation.overall_percentile(100) == pytest.approx(4.0)
        per_sensor_90 = evaluation.sensor_percentile(100)
        np.testing.assert_allclose(per_sensor_90, [3.0, 4.0])

    def test_empty_raises(self):
        with pytest.raises(IdentificationError):
            PredictionEvaluation(sensor_ids=(1,)).rms_matrix()


class TestFitAndEvaluate:
    def test_end_to_end_on_known_system(self, dataset):
        model, result = fit_and_evaluate(
            dataset,
            dataset,
            order=1,
            mode=OCCUPIED,
            evaluation=EvaluationOptions(start_offset_hours=1.0, horizon_hours=10.0),
        )
        assert result.overall_percentile(90) < 1e-6
        assert model.n_sensors == dataset.n_sensors
