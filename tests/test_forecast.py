"""Tests for the calendar-based disturbance forecaster."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.control import CalendarForecaster, ForecastingController, MPCConfig, ReducedModelMPC
from repro.errors import ConfigurationError
from repro.geometry.auditorium import Point
from repro.simulation import AuditoriumSimulator, SimulationConfig
from repro.simulation.calendar import Event, EventCalendar
from repro.simulation.lighting import LightingModel
from repro.simulation.weather import WeatherModel
from tests.test_control import cooling_model

EPOCH = datetime(2013, 3, 18)


@pytest.fixture
def forecaster():
    event = Event(
        name="seminar",
        start=EPOCH + timedelta(hours=12),
        duration_minutes=60,
        attendance=85,
        kind="seminar",
        presentation=True,
    )
    calendar = EventCalendar(events=[event])
    return CalendarForecaster(
        calendar=calendar,
        lighting=LightingModel(calendar),
        weather=WeatherModel(seed=1),
        epoch=EPOCH,
        step_seconds=60.0,
    )


class TestCalendarForecaster:
    def test_occupancy_follows_schedule(self, forecaster):
        before = forecaster.occupancy_at(EPOCH + timedelta(hours=11))
        during = forecaster.occupancy_at(EPOCH + timedelta(hours=12, minutes=30))
        after = forecaster.occupancy_at(EPOCH + timedelta(hours=14))
        assert before == 0.0
        assert during == pytest.approx(85.0)
        assert after == 0.0

    def test_horizon_sees_upcoming_event(self, forecaster):
        # Plan starting 11:00 with a 2 h horizon at 15-min periods: the
        # seminar (12:00) appears in the later rows.
        step = int(11 * 3600 / 60)
        forecast = forecaster.horizon(step, horizon_steps=8, model_period_s=900.0)
        assert forecast.shape == (8, 3)
        assert forecast[0, 0] == 0.0  # 11:07 - nobody yet
        assert forecast[-1, 0] > 50.0  # 12:52 - seminar in session

    def test_lighting_and_ambient_channels(self, forecaster):
        occupancy, lighting, ambient = forecaster.at(EPOCH + timedelta(hours=12, minutes=5))
        assert lighting == 1.0
        assert -30.0 < ambient < 45.0

    def test_as_source(self, forecaster):
        source = forecaster.as_source()
        step = int(12.5 * 3600 / 60)
        occupancy, lighting, ambient = source(step)
        assert occupancy == pytest.approx(85.0)

    def test_step_seconds_validated(self, forecaster):
        with pytest.raises(ConfigurationError):
            CalendarForecaster(
                calendar=forecaster.calendar,
                lighting=forecaster.lighting,
                weather=forecaster.weather,
                epoch=EPOCH,
                step_seconds=0.0,
            )


class TestForecastingController:
    def test_precools_before_scheduled_event(self, forecaster):
        """With the seminar on the horizon, the plan schedules far more
        cooling than a no-event plan, even though current occupancy is
        zero — the receding horizon sees the arrivals coming."""
        model = cooling_model()
        mpc = ReducedModelMPC(model, n_flows=4, config=MPCConfig(move_weight=0.0))
        step = int(11.25 * 3600 / 60)
        history = np.array([[21.0, 21.0]])
        with_event = mpc.plan(
            history, forecaster.horizon(step, mpc.config.horizon, mpc.config.model_period)
        )
        no_event = mpc.plan(history, np.zeros((mpc.config.horizon, 3)))
        assert with_event.sum() > no_event.sum() + 0.5
        # The extra flow lands on the event periods, not uniformly.
        assert with_event[2:].sum() > with_event[:2].sum()

    def test_plan_log_and_positions_exposed(self, forecaster):
        model = cooling_model()
        mpc = ReducedModelMPC(model, n_flows=4)
        controller = ForecastingController(
            mpc, [Point(5, 2, 1), Point(5, 12, 1)], forecaster
        )
        controller.decide(0, 6.0, np.array([22.0, 22.0]), dt=60.0)
        assert len(controller.positions()) == 2
        assert len(controller.plan_log) >= 1
