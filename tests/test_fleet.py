"""Fleet batching: per-building bit-parity, cohorts, zero-flow guards.

The fleet contract mirrors the kernel-refactor contract one level up:
running building *i* through the batched ``(B, ...)`` pass must be
``np.array_equal`` — no tolerance — to running its spec alone through
the solo simulator.  These tests pin that for a generated 8-building
fleet, across RC stiffness regimes (different sub-step counts), across
chunk sizes, and for the seed-fleet sweep helper; plus the structural
validation and the no-feeding-VAV zero-flow guard that used to poison
state with a NaN mean.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.auditorium import Auditorium, Diffuser, _default_seats
from repro.simulation import AuditoriumSimulator, SimulationConfig
from repro.simulation.fleet import (
    BuildingSpec,
    FleetConfig,
    FleetSimulator,
    build_fleet,
    seed_fleet,
)
from repro.simulation.rc_network import RCNetworkConfig

#: Every array a SimulationResult carries; parity is over all of them.
RESULT_FIELDS = (
    "zone_temps",
    "mass_temps",
    "vav_flows",
    "vav_temps",
    "co2",
    "humidity_ratio",
    "thermostat_readings",
    "thermostat_true",
    "occupancy",
    "zone_occupancy",
    "lighting",
    "ambient",
)


def assert_results_identical(a, b, label=""):
    for name in RESULT_FIELDS:
        left, right = getattr(a, name), getattr(b, name)
        assert np.array_equal(left, right), f"{label}{name} differs (bit-exactness broken)"


class TestFleetParity:
    """Batched building i == solo run, bit for bit."""

    def test_eight_building_fleet_bit_identical(self):
        specs = build_fleet(FleetConfig(n_buildings=8, days=2.0))
        fleet = FleetSimulator(specs).run()
        assert fleet.n_buildings == 8
        for spec, batched in zip(fleet.specs, fleet.results):
            solo = spec.simulator().run()
            assert_results_identical(batched, solo, label=f"{spec.name}: ")

    def test_parity_across_rc_orders(self):
        # Two RC stiffness regimes: the default plant integrates in one
        # sub-step, the low-capacitance variant needs two — they land in
        # separate cohorts and both must match their solo runs.
        stiff = BuildingSpec.paper_default(
            simulation=SimulationConfig(
                days=0.5, rc=RCNetworkConfig(zone_capacitance=1.5e5), seed=7
            ),
            name="stiff",
        )
        soft = BuildingSpec.paper_default(
            simulation=SimulationConfig(days=0.5, seed=8), name="soft"
        )
        fleet_sim = FleetSimulator((stiff, soft))
        assert len(fleet_sim.cohorts) == 2
        substeps = sorted(cohort.plan.substeps for cohort in fleet_sim.cohorts)
        assert substeps[0] < substeps[1]
        fleet = fleet_sim.run()
        for spec, batched in zip(fleet.specs, fleet.results):
            assert_results_identical(batched, spec.simulator().run(), label=f"{spec.name}: ")

    def test_chunked_fleet_matches_single_shot(self):
        specs = build_fleet(FleetConfig(n_buildings=3, days=1.0))
        whole = FleetSimulator(specs).run()
        chunked = FleetSimulator(specs).run(chunk_steps=173)
        for spec, a, b in zip(specs, whole.results, chunked.results):
            assert_results_identical(a, b, label=f"{spec.name}: ")

    def test_seed_fleet_matches_solo_seeds(self):
        # The sweep hook: same building, different seeds, one cohort.
        base = SimulationConfig(days=0.5)
        seeds = (11, 22, 33)
        specs = seed_fleet(base, seeds=seeds)
        fleet_sim = FleetSimulator(specs)
        assert len(fleet_sim.cohorts) == 1
        fleet = fleet_sim.run()
        for seed, result in zip(seeds, fleet.results):
            solo = AuditoriumSimulator(dataclasses.replace(base, seed=seed)).run()
            assert_results_identical(result, solo, label=f"seed {seed}: ")


class TestFleetStructure:
    def test_spec_distribution_is_deterministic(self):
        a = build_fleet(FleetConfig(n_buildings=4, seed=5))
        b = build_fleet(FleetConfig(n_buildings=4, seed=5))
        assert a == b

    def test_fleet_prefix_is_stable_under_growth(self):
        small = build_fleet(FleetConfig(n_buildings=3, seed=5))
        large = build_fleet(FleetConfig(n_buildings=6, seed=5))
        assert large[:3] == small

    def test_uniform_horizon_required(self):
        a = BuildingSpec.paper_default(SimulationConfig(days=1.0), name="a")
        b = BuildingSpec.paper_default(SimulationConfig(days=2.0), name="b")
        with pytest.raises(ConfigurationError):
            FleetSimulator((a, b))

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetSimulator(())

    def test_wiring_must_reference_real_vavs(self):
        with pytest.raises(ConfigurationError):
            BuildingSpec(
                name="bad",
                n_vavs=2,
                diffuser_wiring=((1, 2), (3,)),
                diffuser_ys=(1.0, 5.5),
                simulation=SimulationConfig(
                    hvac=dataclasses.replace(
                        SimulationConfig().hvac, thermostat_blend=((1.0, 0.0), (0.0, 1.0))
                    )
                ),
            )

    def test_vav_counts_must_match_plant(self):
        with pytest.raises(ConfigurationError):
            BuildingSpec(name="mismatch", n_vavs=2)  # default plant drives 4

    def test_result_lookup_by_name(self):
        specs = build_fleet(FleetConfig(n_buildings=2, days=0.5))
        fleet = FleetSimulator(specs).run()
        assert fleet.building(specs[1].name) is fleet.results[1]
        with pytest.raises(KeyError):
            fleet.building("no-such-hall")

    def test_paper_default_spec_is_the_solo_simulator(self):
        config = SimulationConfig(days=0.5, seed=3)
        spec = BuildingSpec.paper_default(simulation=config)
        solo = AuditoriumSimulator(config).run()
        via_spec = spec.simulator().run()
        assert_results_identical(via_spec, solo)


class TestZeroFlow:
    """A diffuser with no feeding VAVs must not NaN-poison the state."""

    @staticmethod
    def _orphan_spec(seed=41):
        return BuildingSpec(
            name="orphan",
            width=20.0,
            depth=16.0,
            height=6.0,
            n_vavs=4,
            diffuser_wiring=((1, 2), (), (3, 4)),
            diffuser_ys=(1.0, 8.0, 5.5),
            simulation=SimulationConfig(days=0.5, seed=seed),
        )

    def test_unfed_diffuser_stays_finite_and_warning_free(self):
        spec = self._orphan_spec()
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = spec.simulator().run()
        for name in RESULT_FIELDS:
            assert np.all(np.isfinite(getattr(result, name))), name

    def test_unfed_diffuser_engines_agree(self):
        spec = self._orphan_spec()
        kernel = spec.simulator().run()
        loop = spec.simulator().run_loop()
        fleet = FleetSimulator((spec,)).run()
        assert_results_identical(loop, kernel, label="loop vs kernel: ")
        assert_results_identical(fleet.results[0], kernel, label="fleet vs kernel: ")

    def test_raw_auditorium_with_unfed_diffuser(self):
        # Same guard through the plain simulator API (no BuildingSpec).
        auditorium = Auditorium(
            width=20.0,
            depth=16.0,
            height=6.0,
            capacity=90,
            seats=_default_seats(20.0, 16.0),
            diffusers=(
                Diffuser("front", y=1.0, vav_ids=(1, 2), reach=3.0),
                Diffuser("orphan", y=8.0, vav_ids=(), reach=3.0),
                Diffuser("mid", y=5.5, vav_ids=(3, 4), reach=3.0),
            ),
            n_vavs=4,
        )
        config = SimulationConfig(days=0.25, seed=13)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            result = AuditoriumSimulator(config, auditorium=auditorium).run()
        assert np.all(np.isfinite(result.zone_temps))
