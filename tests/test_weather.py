"""Tests for the synthetic St. Louis weather model."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.weather import WeatherConfig, WeatherModel


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WeatherConfig(synoptic_rho=1.0)
        with pytest.raises(ConfigurationError):
            WeatherConfig(noise_sigma=-1.0)


class TestDeterminism:
    def test_same_seed_same_value(self):
        when = datetime(2013, 3, 15, 14, 30)
        assert WeatherModel(seed=1).temperature_at(when) == WeatherModel(seed=1).temperature_at(when)

    def test_different_seed_differs(self):
        when = datetime(2013, 3, 15, 14, 30)
        assert WeatherModel(seed=1).temperature_at(when) != WeatherModel(seed=2).temperature_at(when)

    def test_query_order_independent(self):
        a = WeatherModel(seed=3)
        b = WeatherModel(seed=3)
        t1 = datetime(2013, 2, 1, 8, 0)
        t2 = datetime(2013, 4, 1, 8, 0)
        forward = (a.temperature_at(t1), a.temperature_at(t2))
        backward = (b.temperature_at(t2), b.temperature_at(t1))
        assert forward == (backward[1], backward[0])

    def test_trajectory_matches_pointwise(self):
        model = WeatherModel(seed=4)
        epoch = datetime(2013, 1, 31, 6, 0)
        seconds = np.array([0.0, 600.0, 3600.0, 90000.0])
        trajectory = model.trajectory(epoch, seconds)
        pointwise = [
            WeatherModel(seed=4).temperature_at(epoch + timedelta(seconds=float(s)))
            for s in seconds
        ]
        np.testing.assert_allclose(trajectory, pointwise)


class TestClimate:
    def test_spring_warms_up(self):
        """Mean temperature rises substantially from Feb to May."""
        model = WeatherModel(seed=5, config=WeatherConfig(synoptic_sigma=0.0, noise_sigma=0.0))
        feb = np.mean([model.temperature_at(datetime(2013, 2, d, 12)) for d in range(1, 28)])
        may = np.mean([model.temperature_at(datetime(2013, 5, d, 12)) for d in range(1, 28)])
        assert may - feb > 8.0

    def test_diurnal_peak_afternoon(self):
        config = WeatherConfig(synoptic_sigma=0.0, noise_sigma=0.0)
        model = WeatherModel(seed=6, config=config)
        day = datetime(2013, 3, 10)
        temps = {h: model.temperature_at(day + timedelta(hours=h)) for h in range(24)}
        warmest = max(temps, key=temps.get)
        assert 13 <= warmest <= 17
        coldest = min(temps, key=temps.get)
        assert coldest <= 5 or coldest >= 23

    def test_synoptic_variability_day_to_day(self):
        config = WeatherConfig(noise_sigma=0.0)
        model = WeatherModel(seed=7, config=config)
        noons = [model.temperature_at(datetime(2013, 3, d, 12)) for d in range(1, 29)]
        assert np.std(noons) > 1.0

    def test_trajectory_empty(self):
        assert WeatherModel(seed=1).trajectory(datetime(2013, 1, 1), np.empty(0)).size == 0
