"""Repo-root shim so ``python -m repro_lint src/ tests/ benchmarks/`` works
without installing anything.

The real package lives in ``tools/repro_lint``.  Run as ``__main__`` (by
``python -m``), this shim puts ``tools/`` first on ``sys.path`` and
dispatches to the package CLI.  Imported as ``repro_lint`` (which happens
whenever the repo root precedes ``tools/`` on ``sys.path``, e.g. under
pytest), it replaces itself in ``sys.modules`` with the real package —
the self-replacement idiom the import system explicitly supports — so
``import repro_lint`` always yields the package either way.
"""

import importlib.util
import os
import sys

_TOOLS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "tools")
_PKG = os.path.join(_TOOLS, "repro_lint")

if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

if __name__ == "__main__":
    from repro_lint.cli import main

    sys.exit(main())
else:
    _spec = importlib.util.spec_from_file_location(
        "repro_lint",
        os.path.join(_PKG, "__init__.py"),
        submodule_search_locations=[_PKG],
    )
    _module = importlib.util.module_from_spec(_spec)
    sys.modules["repro_lint"] = _module
    _spec.loader.exec_module(_module)
