# Convenience targets; see CONTRIBUTING.md.

.PHONY: install test lint analyze bench bench-quick bench-json report examples stream-demo clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Static analysis: the in-repo lint pack always runs; ruff and mypy run
# when installed (they are optional dev tools, not runtime deps).
lint:
	python -m repro_lint src/ tests/ benchmarks/
	@if command -v ruff >/dev/null 2>&1; then ruff check src tools tests benchmarks; \
	else echo "ruff not installed; skipping"; fi
	@if command -v mypy >/dev/null 2>&1; then mypy; \
	else echo "mypy not installed; skipping"; fi

# Whole-program analysis (RL1xx units-flow, RL2xx cache-key
# completeness, RL3xx determinism, RL4xx contracts coverage) against
# the checked-in baseline.  Fails on any non-baselined finding and on
# stale baseline entries (fixed findings must shrink the baseline:
# python -m repro_lint --analyze --write-baseline).
analyze:
	python -m repro_lint --analyze --fail-stale --report analysis_report.json

bench:
	pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_DAYS=28 pytest benchmarks/ --benchmark-only

# Cache/parallelism + simulator speedup + serving throughput tracking:
# writes BENCH_report.json (see docs/performance.md).  REPRO_BENCH_DAYS /
# REPRO_BENCH_JOBS / REPRO_BENCH_SIM_DAYS / REPRO_BENCH_SERVE_* scale it.
bench-json:
	PYTHONPATH=src python benchmarks/bench_cache.py
	PYTHONPATH=src python benchmarks/bench_schedule.py
	PYTHONPATH=src python benchmarks/bench_sim.py
	PYTHONPATH=src python benchmarks/bench_serve.py
	PYTHONPATH=src python benchmarks/bench_ingest.py

report:
	repro report --days 98 --output report.txt

examples:
	python examples/quickstart.py
	python examples/auditorium_study.py --days 14
	python examples/sensor_placement.py --days 14 --draws 5
	python examples/comfort_audit.py --days 7
	python examples/reduced_model_control.py --days 14 --control-days 2
	python examples/occupancy_sensing.py --days 7
	python examples/fault_campaign.py --days 7
	python examples/online_service.py --days 14

# Online subsystem round trip: stream a trace into a snapshot, then
# serve demo predict-ahead requests from the restored state.
stream-demo:
	repro stream --days 14 --snapshot stream-demo
	repro serve --days 14 --restore stream-demo --demo 3

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
