#!/usr/bin/env python
"""A full modeling study of the auditorium (the paper's Section IV).

Identifies first- and second-order thermal models in both HVAC modes,
compares their free-run prediction accuracy, then explores how accuracy
responds to the training horizon and the prediction length — the
workflow a building engineer would run before designing a controller.

Run:  python examples/auditorium_study.py [--days 42]
"""

import argparse

from repro import OCCUPIED, UNOCCUPIED, default_dataset, fit_and_evaluate
from repro.sysid import prediction_length_sweep
from repro.sysid.evaluation import EvaluationOptions


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=42.0)
    args = parser.parse_args()

    dataset = default_dataset(days=args.days)

    print("== model order comparison ==")
    for mode, evaluation_options in (
        (OCCUPIED, EvaluationOptions(start_offset_hours=1.5, horizon_hours=13.5)),
        (UNOCCUPIED, EvaluationOptions(start_offset_hours=0.5, horizon_hours=7.5)),
    ):
        train, validate = dataset.split_half_days(mode)
        for order in (1, 2):
            model, evaluation = fit_and_evaluate(
                train, validate, order=order, mode=mode, evaluation=evaluation_options
            )
            print(
                f"{mode.name:>10} order {order}: "
                f"90th-pct RMS {evaluation.overall_percentile(90):.3f} degC "
                f"over {evaluation.n_days} days "
                f"(spectral radius {model.spectral_radius():.3f})"
            )

    print("\n== prediction-horizon sweep (occupied) ==")
    train, validate = dataset.split_half_days(OCCUPIED)
    sweep = prediction_length_sweep(train, validate, mode=OCCUPIED)
    print(f"{'horizon_h':>10} {'order1':>8} {'order2':>8}")
    for horizon, error1, error2 in sweep.as_rows():
        print(f"{horizon:>10.1f} {error1:>8.3f} {error2:>8.3f}")
    print("\nsecond-order models stay below first-order at every horizon, and")
    print("both degrade as the free run gets longer - the paper's Fig. 5.")


if __name__ == "__main__":
    main()
