#!/usr/bin/env python
"""Quickstart: the paper's three-step pipeline on a synthetic month.

Generates a 4-week synthetic auditorium trace (simulate → observe →
assemble → screen), runs the full pipeline — spectral clustering,
near-mean sensor selection, reduced second-order model identification —
and scores it on held-out days.

Run:  python examples/quickstart.py
"""

from repro import OCCUPIED, PipelineConfig, ThermalModelingPipeline, default_dataset


def main() -> None:
    # 1. The dataset: 25 reliable wireless sensors + 2 HVAC thermostats,
    # aligned at 15-minute resolution, with realistic gaps.
    dataset = default_dataset(days=28)
    print(f"dataset: {dataset.n_sensors} sensors x {dataset.n_samples} ticks, "
          f"coverage {dataset.coverage():.0%}")

    # 2. The paper's protocol: usable days split half/half.
    train, validate = dataset.split_half_days(OCCUPIED)
    print(f"usable occupied days: {len(dataset.usable_days(OCCUPIED))}")

    # 3. Fit the three-step pipeline (cluster -> select -> identify).
    pipeline = ThermalModelingPipeline(
        PipelineConfig(cluster_method="correlation", selection_strategy="sms")
    )
    result = pipeline.fit(train)
    print(f"clusters: {result.clustering.as_dict()}")
    print(f"selected sensors: {result.selected_sensor_ids}")

    # 4. Evaluate on the held-out half.
    report = pipeline.evaluate(validate)
    print(report.summary())


if __name__ == "__main__":
    main()
