#!/usr/bin/env python
"""Comfort audit: does the spatial spread actually matter? (Fanger PMV).

The paper justifies fine-grained sensing by noting that its measured
~2 degC front-to-back spread moves the Predicted Mean Vote by ~0.5 —
enough to flip seated occupants from neutral to "slightly cool/warm".
This example finds the busiest instant of the synthetic trace, computes
PMV/PPD at every sensor location, and shows the comfort asymmetry the
HVAC's two thermostats cannot see.

Run:  python examples/comfort_audit.py [--days 14]
"""

import argparse

import numpy as np

from repro import ComfortConditions, default_dataset
from repro.comfort.pmv import pmv_at_temperature, ppd_from_pmv
from repro.geometry.layout import FRONT_SENSOR_IDS, THERMOSTAT_IDS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=14.0)
    args = parser.parse_args()

    dataset = default_dataset(days=args.days)
    occupancy = dataset.input_channel("occupancy")
    valid = np.isfinite(occupancy) & np.isfinite(dataset.temperatures).all(axis=1)
    tick = int(np.flatnonzero(valid)[np.argmax(occupancy[valid])])
    when = dataset.axis.datetime_at(tick)
    print(f"busiest instrumented instant: {when} (~{occupancy[tick]:.0f} occupants)\n")

    base = ComfortConditions(metabolic_rate=1.1, clothing=0.7, relative_humidity=40.0)
    print(f"{'sensor':>7} {'zone':>10} {'temp':>6} {'PMV':>6} {'PPD%':>6}")
    votes = {}
    for sid in dataset.sensor_ids:
        temp = float(dataset.temperature_of(sid)[tick])
        vote = pmv_at_temperature(temp, base)
        votes[sid] = vote
        zone = (
            "thermostat" if sid in THERMOSTAT_IDS
            else "front" if sid in FRONT_SENSOR_IDS
            else "back"
        )
        print(f"{sid:>7} {zone:>10} {temp:>6.2f} {vote:>6.2f} {ppd_from_pmv(vote):>6.1f}")

    spread = max(votes.values()) - min(votes.values())
    tstat_votes = [votes[s] for s in THERMOSTAT_IDS if s in votes]
    print(f"\nPMV spread across the room: {spread:.2f} "
          "(the paper: ~0.5 per 2 degC of temperature difference)")
    if tstat_votes:
        print(f"PMV at the controlling thermostats: "
              f"{np.mean(tstat_votes):.2f} - the controller believes the room "
              "is cooler than most occupants feel.")


if __name__ == "__main__":
    main()
