#!/usr/bin/env python
"""Close the loop: MPC on the reduced model vs the thermostat PI.

This is the payoff the paper promises in its conclusion: the simplified
thermal model (two well-chosen sensors instead of 27) is good enough to
*control* the room.  The script

1. runs the paper's pipeline on a synthetic training month (cluster ->
   near-mean selection -> reduced second-order model),
2. wraps that model in a receding-horizon MPC reading only the two
   selected sensors, and
3. simulates a fresh week under (a) the building's PI loop on its
   plume-biased wall thermostats and (b) the MPC — then compares
   occupant-weighted comfort and cooling energy.

The PI under-cools the back of the room because its thermostats hang in
the supply-air plume; the MPC sees a genuine back-zone sensor and fixes
that, at the price of somewhat more cooling energy.

Run:  python examples/reduced_model_control.py [--days 28] [--control-days 4]
"""

import argparse
from datetime import datetime, timedelta

from repro import OCCUPIED, PipelineConfig, ThermalModelingPipeline, default_dataset
from repro.control import MPCConfig, ReducedModelMPC, run_closed_loop
from repro.control.closed_loop import SensorFeedbackController, make_disturbance_source
from repro.geometry.layout import THERMOSTAT_IDS
from repro.simulation import SimulationConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=28.0, help="training-trace length")
    parser.add_argument("--control-days", type=float, default=4.0, help="closed-loop test length")
    parser.add_argument("--setpoint", type=float, default=21.0)
    args = parser.parse_args()

    print("== step 1: train the reduced model ==")
    dataset = default_dataset(days=args.days)
    wireless = dataset.select_sensors(
        [s for s in dataset.sensor_ids if s not in THERMOSTAT_IDS]
    )
    train, _ = wireless.split_half_days(OCCUPIED)
    pipeline = ThermalModelingPipeline(PipelineConfig(n_clusters=2, ridge=10.0))
    fitted = pipeline.fit(train)
    print(f"selected sensors: {fitted.selected_sensor_ids} "
          f"(front + back zone representatives)")

    print("\n== step 2: closed-loop comparison ==")
    control_config = SimulationConfig(
        start=datetime(2013, 3, 18), days=args.control_days
    )
    baseline = run_closed_loop(control_config, setpoint=args.setpoint)
    print(f"PI on wall thermostats: {baseline.metrics.summary()}")

    mpc = ReducedModelMPC(
        fitted.model, n_flows=4, config=MPCConfig(setpoint=args.setpoint)
    )
    positions = [train.sensor_positions[s] for s in fitted.selected_sensor_ids]
    controller = SensorFeedbackController(
        mpc, positions, make_disturbance_source(control_config)
    )
    mpc_run = run_closed_loop(control_config, controller=controller, setpoint=args.setpoint)
    print(f"MPC on reduced model:   {mpc_run.metrics.summary()}")

    # Variant: plan against the room's event calendar instead of a
    # persistence forecast — pre-cool before the seminar fills the room.
    from repro.control import CalendarForecaster, ForecastingController
    from repro.simulation import AuditoriumSimulator

    probe = AuditoriumSimulator(control_config)
    forecaster = CalendarForecaster(
        probe.calendar, probe.lighting, probe.weather,
        control_config.start, control_config.dt,
    )
    mpc2 = ReducedModelMPC(fitted.model, n_flows=4, config=MPCConfig(setpoint=args.setpoint))
    forecast_run = run_closed_loop(
        control_config,
        controller=ForecastingController(mpc2, positions, forecaster),
        setpoint=args.setpoint,
    )
    print(f"MPC + event calendar:   {forecast_run.metrics.summary()}")

    improvement = 1.0 - mpc_run.metrics.comfort_rms / baseline.metrics.comfort_rms
    print(f"\ncomfort improvement over PI: {improvement:.0%} "
          f"({len(controller.plan_log)} re-plans over {args.control_days:g} days)")
    print("the reduced model - two sensors, identified from one month of a "
          "temporary dense deployment - is sufficient to control the room;")
    print("feeding the room's schedule into the forecast then saves energy "
          "on top (pre-cooling beats chasing).")


if __name__ == "__main__":
    main()
