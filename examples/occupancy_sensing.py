#!/usr/bin/env python
"""Occupancy without a camera: inverting the CO₂ mass balance.

The paper counted occupants by manually inspecting webcam photos and
noted that "in the future, occupancy could be measured automatically".
The HVAC portal already logs everything needed: the room's CO₂
concentration and the supply air flows.  This example inverts the
well-mixed CO₂ balance,

    n(t) = [ V dC/dt + Q_fresh (C − C_out) ] / g,

and compares the resulting headcount estimate with the camera counts —
then shows the two modalities disagreeing exactly where each is weak
(CO₂ lags arrivals; the camera miscounts large crowds).

Run:  python examples/occupancy_sensing.py [--days 14]
"""

import argparse

import numpy as np

from repro.analysis import estimate_occupancy_from_co2
from repro.data.synth import default_output


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=14.0)
    args = parser.parse_args()

    output = default_output(days=args.days)
    estimate = estimate_occupancy_from_co2(output.raw)

    print(f"CO2-based occupancy estimate over {args.days:g} days")
    print(f"mean absolute error vs camera: {estimate.mean_absolute_error():.1f} people")
    print(f"correlation with camera:       {estimate.correlation():.2f}")

    # Show the busiest day side by side.
    both = np.isfinite(estimate.camera) & np.isfinite(estimate.estimate)
    days = estimate.axis.day_indices()
    busiest_day = int(days[both][np.argmax(estimate.camera[both])])
    rows = np.flatnonzero((days == busiest_day) & both)
    print(f"\nbusiest day (+{busiest_day} days from trace start):")
    print(f"{'time':>20} {'camera':>7} {'co2-est':>8}")
    for tick in rows[:: max(1, len(rows) // 24)]:
        when = estimate.axis.datetime_at(int(tick))
        print(f"{str(when):>20} {estimate.camera[tick]:>7.0f} {estimate.estimate[tick]:>8.1f}")

    print("\nthe CO2 inversion lags arrivals by one ventilation time constant")
    print("but needs no camera, no privacy review and no manual counting -")
    print("one more use of the multi-modal dataset the testbed already logs.")


if __name__ == "__main__":
    main()
