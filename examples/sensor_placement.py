#!/usr/bin/env python
"""Where should the permanent sensors go? (the paper's Sections V-VI).

Clusters the dense training deployment, then compares every selection
strategy — near-mean (SMS), stratified random (SRS), plain random (RS),
the building's own thermostats, and Gaussian-process mutual-information
placement — on how well the kept sensors report each thermal zone's
mean temperature on held-out days.

Run:  python examples/sensor_placement.py [--days 28] [--clusters 2]
"""

import argparse
import statistics

from repro import OCCUPIED, cluster_sensors, default_dataset
from repro.cluster import cluster_mean_temperatures, cluster_quality
from repro.geometry.layout import THERMOSTAT_IDS
from repro.selection import (
    evaluate_selection,
    gp_selection,
    near_mean_selection,
    random_selection,
    stratified_random_selection,
    thermostat_selection,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=28.0)
    parser.add_argument("--clusters", type=int, default=2)
    parser.add_argument("--draws", type=int, default=20, help="random-strategy draws")
    args = parser.parse_args()

    dataset = default_dataset(days=args.days)
    wireless = dataset.select_sensors(
        [s for s in dataset.sensor_ids if s not in THERMOSTAT_IDS]
    )
    train, validate = wireless.split_half_days(OCCUPIED)
    train_full, validate_full = dataset.split_half_days(OCCUPIED)

    print("== step 1: cluster the dense deployment ==")
    clustering = cluster_sensors(train, method="correlation", k=args.clusters)
    means = cluster_mean_temperatures(clustering, train)
    for cluster in range(clustering.k):
        print(
            f"cluster {cluster}: mean {means[cluster]:.2f} degC, "
            f"members {clustering.members(cluster)}"
        )
    quality = cluster_quality(clustering, validate)
    print(
        "within-cluster residual correlations:",
        {c: round(v, 2) for c, v in quality.mean_within_correlation.items()},
    )

    print("\n== step 2: compare selection strategies ==")
    print(f"{'strategy':>12} {'p99 error (degC)':>18}  selected sensors")
    sms = near_mean_selection(clustering, train)
    print(f"{'SMS':>12} {evaluate_selection(sms, clustering, validate):>18.3f}  {sms.sensors()}")
    srs_error = statistics.mean(
        evaluate_selection(stratified_random_selection(clustering, seed=d), clustering, validate)
        for d in range(args.draws)
    )
    print(f"{'SRS':>12} {srs_error:>18.3f}  (average of {args.draws} draws)")
    rs_error = statistics.mean(
        evaluate_selection(random_selection(clustering, seed=d), clustering, validate)
        for d in range(args.draws)
    )
    print(f"{'RS':>12} {rs_error:>18.3f}  (average of {args.draws} draws)")
    thermostats = thermostat_selection(clustering, train_full)
    print(
        f"{'Thermostats':>12} "
        f"{evaluate_selection(thermostats, clustering, validate_full):>18.3f}  "
        f"{thermostats.sensors()}"
    )
    gp = gp_selection(clustering, train)
    print(f"{'GP':>12} {evaluate_selection(gp, clustering, validate):>18.3f}  {gp.sensors()}")

    print("\nclustering-aware selection (SMS/SRS) needs only "
          f"{clustering.k} permanent sensors to track both thermal zones;")
    print("the building's own thermostats sit together in the cool front "
          "zone and misreport the warm back rows.")


if __name__ == "__main__":
    main()
