#!/usr/bin/env python
"""Fault campaign walkthrough: inject, quarantine, model the survivors.

Builds a mixed fault campaign against a synthetic two-week trace,
injects it at increasing severity, and shows the degraded pipeline at
work: screening quarantines the faulted sensors with machine-readable
reasons, gap segmentation absorbs the injected outages, and the
surviving sensors still cluster, select and identify.

Run:  python examples/fault_campaign.py [--days 14] [--severity 1.0]
"""

import argparse

from repro.data.gaps import gap_statistics
from repro.data.modes import OCCUPIED
from repro.data.screening import screen_sensors
from repro.data.synth import default_dataset
from repro.geometry.layout import THERMOSTAT_IDS
from repro.sensing.faults import FaultConfig, SensorFault, FaultCampaign, apply_campaign
from repro.sysid.evaluation import fit_and_evaluate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=14.0)
    parser.add_argument("--severity", type=float, default=1.0)
    args = parser.parse_args()

    # 1. A clean analysis dataset (25 wireless sensors + 2 thermostats).
    dataset = default_dataset(days=args.days)
    print(f"clean dataset: {dataset.n_sensors} sensors, "
          f"coverage {dataset.coverage():.0%}")

    # 2. A campaign mixing four concurrent fault kinds, scaled to the
    # requested severity.  Every draw derives from the campaign seed, so
    # re-running this script reproduces the same corruption bit-for-bit.
    wireless = [s for s in dataset.sensor_ids if s not in THERMOSTAT_IDS]
    campaign = FaultCampaign(
        name="walkthrough",
        faults=(
            SensorFault(wireless[0], FaultConfig(kind="stuck")),
            SensorFault(wireless[1], FaultConfig(kind="drift")),
            SensorFault(wireless[2], FaultConfig(kind="nan_gap")),
            SensorFault(wireless[3], FaultConfig(kind="spikes")),
        ),
    ).scaled(args.severity)
    result = apply_campaign(dataset, campaign)
    print()
    print(result.summary())

    # 3. Screening quarantines the casualties (thermostats protected).
    report = screen_sensors(
        result.dataset.temperatures,
        result.dataset.sensor_ids,
        result.dataset.axis.day_indices(),
        protected_ids=THERMOSTAT_IDS,
    )
    print()
    print(f"quarantined {report.n_dropped} of {dataset.n_sensors} sensors:")
    for sid, reason in sorted(report.dropped.items()):
        print(f"  sensor {sid}: {reason}")

    # 4. Gap segmentation absorbs what the faults punched out.
    survivors = result.dataset.select_sensors(report.require_survivors().kept_ids)
    stats = gap_statistics(survivors.temperatures)
    print()
    print(f"survivors: {survivors.n_sensors} sensors, "
          f"{stats.n_segments} continuous segments, "
          f"coverage {stats.coverage:.0%}, longest gap {stats.longest_gap} ticks")

    # 5. The survivors still identify and predict.
    train, valid = survivors.split_half_days(OCCUPIED)
    _, evaluation = fit_and_evaluate(train, valid, order=1, mode=OCCUPIED)
    print(f"order-1 model on survivors: "
          f"free-run RMS {evaluation.overall_rms():.3f} degC "
          f"over {evaluation.n_days} held-out days")


if __name__ == "__main__":
    main()
