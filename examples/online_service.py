#!/usr/bin/env python
"""Online service walkthrough: stream, serve, snapshot, detect drift.

The deployment-phase counterpart of the batch examples: replays a
synthetic trace tick by tick through the ingestion gate and the
recursive (RLS) estimator, answers micro-batched predict-ahead requests
from the live model, snapshots the whole pipeline through the artifact
cache, and shows the CUSUM drift detector catching a mid-stream sensor
fault.

Run:  python examples/online_service.py [--days 14] [--order 2]
"""

import argparse

import numpy as np

from repro.cluster import cluster_sensors_cached
from repro.data.modes import OCCUPIED
from repro.data.synth import default_dataset
from repro.geometry.layout import THERMOSTAT_IDS
from repro.selection import near_mean_selection
from repro.sensing.faults import FaultCampaign, FaultConfig, SensorFault, apply_campaign
from repro.streaming import (
    OnlinePipeline,
    PredictionService,
    ReplaySource,
    load_snapshot,
    save_snapshot,
)
from repro.streaming.service import PredictionRequest


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=14.0)
    parser.add_argument("--order", type=int, default=2, choices=(1, 2))
    args = parser.parse_args()

    # 1. The deployment sensor set: cluster the wireless field and keep
    # the near-mean representatives, exactly like the paper's protocol.
    dataset = default_dataset(days=args.days)
    wireless = dataset.select_sensors(
        [s for s in dataset.sensor_ids if s not in THERMOSTAT_IDS]
    )
    train, _ = wireless.split_half_days(OCCUPIED)
    clustering = cluster_sensors_cached(train, method="correlation", k=2)
    selected = near_mean_selection(clustering, train).sensors()
    stream = dataset.select_sensors(selected)
    print(f"streaming {len(selected)} selected sensors: {list(selected)}")

    # 2. Replay the trace through gate -> RLS -> drift monitors.
    pipeline = OnlinePipeline(
        stream.sensor_ids, stream.channels.n_channels, order=args.order
    )
    summary = pipeline.run(ReplaySource(stream))
    print(f"stream: {summary.describe()}")
    model = pipeline.model()
    print(f"online model: order {model.order}, "
          f"spectral radius {model.spectral_radius():.4f}")

    # 3. Serve micro-batched predict-ahead requests from the live model.
    service = PredictionService(pipeline)
    held = pipeline.estimator.last_inputs()
    for horizon in (4, 8, 16):
        service.submit(
            PredictionRequest(
                request_id=f"ahead-{horizon}",
                horizon_inputs=np.tile(held, (horizon, 1)),
            )
        )
    print()
    for response in service.drain():
        final = response.predictions[-1]
        print(f"  {response.request_id}: {response.predictions.shape[0]} ticks, "
              f"final temps {np.round(final, 2)} "
              f"({response.latency_s * 1e3:.2f} ms)")
    stats = service.stats
    print(f"service: {stats.served} served in {stats.batches} batch(es), "
          f"mean latency {stats.mean_latency_s * 1e3:.2f} ms")

    # 4. Snapshot the whole pipeline and restore it — a process restart
    # without replaying the history.  (No-op if REPRO_CACHE=off.)
    key = save_snapshot("online-service-example", pipeline)
    if key is not None:
        restored = load_snapshot("online-service-example")
        print(f"snapshot round trip ok: "
              f"{restored.estimator.n_updates} updates restored "
              f"({key[:16]}...)")

    # 5. Drift detection: freeze one selected sensor and spike another
    # mid-stream; the CUSUM innovation monitor raises the alarm.
    campaign = FaultCampaign(
        name="online-service-drift",
        faults=(
            SensorFault(int(selected[0]), FaultConfig(kind="stuck", onset_fraction=0.6)),
            SensorFault(int(selected[-1]), FaultConfig(kind="spikes", onset_fraction=0.6)),
        ),
    )
    faulted = apply_campaign(stream, campaign).dataset
    monitor = OnlinePipeline(
        stream.sensor_ids, stream.channels.n_channels, order=args.order
    )
    monitor.run(ReplaySource(faulted))
    onset = int(round(0.6 * stream.n_samples))
    fired = monitor.summary.drift_fired_at
    print()
    if fired is not None:
        print(f"drift alarm: fired at tick {fired}, "
              f"{fired - onset} ticks after the fault onset at {onset}")
    else:
        print(f"drift alarm did not fire "
              f"(statistic {monitor.drift.statistic:.2f})")


if __name__ == "__main__":
    main()
